#include "src/workload/onion_activity.h"

#include <algorithm>

#include "src/util/check.h"

namespace tormet::workload {

namespace {
[[nodiscard]] std::size_t scaled_count(double network_wide, double scale,
                                       std::size_t minimum = 1) {
  return std::max<std::size_t>(static_cast<std::size_t>(network_wide * scale),
                               minimum);
}
}  // namespace

onion_driver::onion_driver(tor::network& net, onion_params params)
    : net_{net}, params_{std::move(params)}, rng_{params_.seed},
      fetched_pool_{0},
      popularity_{1, 1.0},  // placeholder; re-built below once sizes are known
      index_{} {
  expects(params_.network_scale > 0.0 && params_.network_scale <= 1.0,
          "network scale must be in (0,1]");
  const std::size_t n_services =
      scaled_count(params_.services, params_.network_scale, 8);
  services_.reserve(n_services);
  addresses_.reserve(n_services);
  for (std::size_t i = 0; i < n_services; ++i) {
    const tor::service_id s = net_.add_onion_service();
    services_.push_back(s);
    addresses_.push_back(net_.address_of(s));
  }
  fetched_pool_ = std::max<std::size_t>(
      static_cast<std::size_t>(static_cast<double>(n_services) *
                               params_.fetched_service_fraction),
      1);
  popularity_ = zipf_sampler{fetched_pool_, params_.service_popularity_exponent};
  index_ = ahmia_index::make(addresses_, params_.public_index_fraction, rng_);
}

void onion_driver::run_day(std::span<const tor::client_id> fetch_clients,
                           std::span<const tor::client_id> rend_clients,
                           sim_time day_start) {
  expects(!fetch_clients.empty(), "need at least one fetching client");
  expects(!rend_clients.empty(), "need at least one rendezvous client");
  const std::int64_t period = day_start.seconds / k_seconds_per_day;
  const auto random_t = [&] {
    return day_start + static_cast<std::int64_t>(rng_.below(k_seconds_per_day));
  };

  // -- publishes ------------------------------------------------------------
  for (const auto s : services_) {
    const std::uint64_t publishes = rng_.poisson(params_.publishes_per_service);
    for (std::uint64_t i = 0; i < publishes; ++i) {
      net_.publish_descriptor(s, period, random_t());
    }
  }

  // -- descriptor fetches -----------------------------------------------------
  const std::size_t fetches =
      scaled_count(params_.fetch_attempts, params_.network_scale);
  for (std::size_t i = 0; i < fetches; ++i) {
    const tor::client_id c =
        fetch_clients[static_cast<std::size_t>(rng_.below(fetch_clients.size()))];
    if (rng_.bernoulli(params_.fetch_fail_fraction)) {
      if (rng_.bernoulli(params_.malformed_share_of_failures)) {
        // Malformed request: the address in it is unparseable.
        net_.fetch_descriptor(c, addresses_[0], period, /*malformed=*/true,
                              random_t());
      } else {
        // Stale address from an outdated crawler/botnet list: a well-formed
        // v2 address that no service publishes.
        const std::uint64_t k = rng_.below(params_.stale_address_pool);
        const tor::onion_address stale = tor::derive_onion_address(
            as_bytes("tormet.stale.address." + std::to_string(k)));
        net_.fetch_descriptor(c, stale, period, /*malformed=*/false, random_t());
      }
      continue;
    }
    // Genuine fetch of a published service, Zipf popularity.
    const std::size_t idx =
        static_cast<std::size_t>(popularity_.sample(rng_) - 1);
    const tor::fetch_result result = net_.fetch_descriptor(
        c, addresses_[idx], period, /*malformed=*/false, random_t());
    if (result.outcome == tor::fetch_outcome::success) {
      fetched_addresses_.insert(addresses_[idx].value);
    }
  }

  // -- rendezvous -------------------------------------------------------------
  const std::size_t attempts =
      scaled_count(params_.rend_attempts, params_.network_scale);
  for (std::size_t i = 0; i < attempts; ++i) {
    const tor::client_id c =
        rend_clients[static_cast<std::size_t>(rng_.below(rend_clients.size()))];
    tor::rend_outcome outcome = tor::rend_outcome::succeeded;
    std::uint64_t payload = 0;
    if (rng_.bernoulli(params_.rend_attempt_success)) {
      payload = static_cast<std::uint64_t>(
          rng_.exponential(1.0 / params_.rend_payload_mean));
      payload = std::max<std::uint64_t>(payload, tor::k_cell_payload_bytes);
    } else {
      outcome = rng_.bernoulli(params_.conn_closed_share_of_failures)
                    ? tor::rend_outcome::failed_conn_closed
                    : tor::rend_outcome::failed_expired;
    }
    net_.rendezvous_attempt(c, outcome, payload, random_t());
  }
}

}  // namespace tormet::workload
