#include "src/workload/zipf.h"

#include <cmath>

#include "src/util/check.h"

namespace tormet::workload {

zipf_sampler::zipf_sampler(std::uint64_t n, double exponent)
    : n_{n}, s_{exponent} {
  expects(n >= 1, "zipf needs at least one rank");
  expects(exponent > 0.0, "zipf exponent must be positive");
  pow_term_ = std::abs(s_ - 1.0) < 1e-9
                  ? 0.0
                  : std::pow(static_cast<double>(n_), 1.0 - s_) - 1.0;
}

std::uint64_t zipf_sampler::sample(rng& r) const {
  const double u = r.uniform();
  double x = 0.0;
  if (std::abs(s_ - 1.0) < 1e-9) {
    x = std::pow(static_cast<double>(n_), u);
  } else {
    x = std::pow(1.0 + u * pow_term_, 1.0 / (1.0 - s_));
  }
  auto rank = static_cast<std::uint64_t>(x);
  if (rank < 1) rank = 1;
  if (rank > n_) rank = n_;
  return rank;
}

}  // namespace tormet::workload
