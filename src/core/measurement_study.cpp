#include "src/core/measurement_study.h"

#include <algorithm>

#include "src/util/check.h"

namespace tormet::core {

measurement_study::measurement_study(const study_config& config)
    : network_{tor::make_synthetic_consensus(config.consensus), config.seed} {
  select_measured_relays(config);

  // Grant the measured relays the HSDir flag (like the paper's long-running
  // measurement relays) and rebuild the network over the amended consensus,
  // so HSDir measurements have a usable responsibility fraction.
  std::vector<tor::relay> relays = network_.net().relays();
  for (const auto id : measured_) relays[id].flags.hsdir = true;
  network_ = tor::network{tor::consensus{std::move(relays)}, config.seed};
}

void measurement_study::select_measured_relays(const study_config& config) {
  const tor::consensus& net = network_.net();

  // Pick `count` relays whose individual selection probability is close to
  // target/count: the combined fraction then lands near the target, and no
  // single relay dominates the observations (matching the paper's
  // deployment of moderately sized relays).
  const auto pick = [&](tor::position pos, std::size_t count, double target,
                        const std::set<tor::relay_id>& exclude,
                        bool forbid_exit_flag) {
    std::vector<tor::relay_id> eligible = net.eligible(pos);
    std::erase_if(eligible, [&](tor::relay_id id) {
      if (exclude.contains(id)) return true;
      return forbid_exit_flag && net.relay_at(id).flags.exit;
    });
    std::sort(eligible.begin(), eligible.end(),
              [&](tor::relay_id a, tor::relay_id b) {
                return net.relay_at(a).weight > net.relay_at(b).weight;
              });
    const double desired_p = target / static_cast<double>(count);
    // First relay at or below the desired per-relay probability.
    std::size_t start = 0;
    while (start + count < eligible.size() &&
           net.selection_probability(pos, eligible[start]) > desired_p) {
      ++start;
    }
    std::vector<tor::relay_id> picked;
    for (std::size_t i = start; i < eligible.size() && picked.size() < count;
         ++i) {
      picked.push_back(eligible[i]);
    }
    return picked;
  };

  const std::vector<tor::relay_id> exits =
      pick(tor::position::exit, config.num_exit_relays,
           config.target_exit_fraction, {}, /*forbid_exit_flag=*/false);
  std::set<tor::relay_id> exclude{exits.begin(), exits.end()};
  // The paper's remaining 10 relays are non-exit: exclude exit-flagged
  // relays so measured_exits()/measured_guards() partition cleanly.
  const std::vector<tor::relay_id> guards =
      pick(tor::position::guard, config.num_nonexit_relays,
           config.target_guard_fraction, exclude, /*forbid_exit_flag=*/true);

  measured_ = exits;
  measured_.insert(measured_.end(), guards.begin(), guards.end());
  ensures(!measured_.empty(), "no measured relays selected");
}

std::vector<tor::relay_id> measurement_study::measured_exits() const {
  std::vector<tor::relay_id> out;
  for (const auto id : measured_) {
    if (network_.net().relay_at(id).flags.exit) out.push_back(id);
  }
  return out;
}

std::vector<tor::relay_id> measurement_study::measured_guards() const {
  std::vector<tor::relay_id> out;
  for (const auto id : measured_) {
    const tor::relay& r = network_.net().relay_at(id);
    if (r.flags.guard && !r.flags.exit) out.push_back(id);
  }
  return out;
}

std::vector<tor::relay_id> measurement_study::measured_hsdirs() const {
  std::vector<tor::relay_id> out;
  for (const auto id : measured_) {
    if (network_.net().relay_at(id).flags.hsdir) out.push_back(id);
  }
  return out;
}

double measurement_study::fraction(tor::position pos) const {
  return fraction(pos, measured_);
}

double measurement_study::fraction(
    tor::position pos, const std::vector<tor::relay_id>& relays) const {
  std::set<tor::relay_id> ids{relays.begin(), relays.end()};
  return network_.net().combined_probability(pos, ids);
}

double measurement_study::hsdir_fraction() const {
  const std::vector<tor::relay_id> dirs = measured_hsdirs();
  return network_.ring().responsibility_fraction(
      {dirs.begin(), dirs.end()}, /*period=*/0);
}

privcount::deployment_config measurement_study::privcount_config() const {
  privcount::deployment_config cfg;
  cfg.measured_relays = measured_;
  return cfg;
}

psc::deployment_config measurement_study::psc_config() const {
  psc::deployment_config cfg;
  cfg.measured_relays = measured_;
  return cfg;
}

}  // namespace tormet::core
