// The paper's §3.1 measurement-scheduling discipline, as an enforceable
// object: "PrivCount and PSC measurements are never conducted in parallel,
// and we always enforce at least 24 hours of delay between any sequential
// measurement of distinct statistics." Running rounds back-to-back or
// concurrently would let an adversary correlate the published noisy values
// and erode the per-day privacy budget.
//
// A measurement_schedule validates a measurement plan against these rules
// and hands out the rounds in order; deployments/benches consult it before
// starting a round, and the live multi-round pipeline (cli::node_runner /
// cli::run_reference_round) uses it to partition a continuously ingested
// event stream into per-round collection windows: an event belongs to the
// round whose window contains its sim time, and events falling in the gap
// between windows are counted-but-dropped (the paper's relays keep
// collecting while no epoch is open).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/sim_time.h"

namespace tormet::core {

/// One planned measurement round.
struct planned_round {
  std::string statistic;   // identifies the statistic family measured
  sim_time start;
  std::int64_t duration_seconds = k_measurement_round_seconds;

  [[nodiscard]] sim_time end() const noexcept {
    return start + duration_seconds;
  }
};

/// Validation outcome for a plan.
struct schedule_violation {
  std::size_t first_round = 0;   // indices into the plan
  std::size_t second_round = 0;
  std::string reason;
};

class measurement_schedule {
 public:
  /// Minimum gap between sequential measurements of *distinct* statistics
  /// (the paper: at least 24 hours).
  static constexpr std::int64_t k_min_gap_seconds = k_seconds_per_day;

  /// Appends a round. Throws precondition_error if it would overlap any
  /// scheduled round, or start less than the required gap after a round of
  /// a different statistic (repeats of the same statistic may be adjacent,
  /// as in the paper's repeated fetch-failure measurements).
  void add(planned_round round);

  /// Checks a candidate without adding it; empty vector = admissible.
  [[nodiscard]] std::vector<schedule_violation> violations_for(
      const planned_round& candidate) const;

  [[nodiscard]] const std::vector<planned_round>& rounds() const noexcept {
    return rounds_;
  }

  /// True when `t` falls inside round `index`'s collection window.
  [[nodiscard]] bool in_window(std::size_t index, sim_time t) const;

  /// The round whose collection window contains `t`, or nullopt when `t`
  /// falls in an inter-round gap or outside the plan entirely. This is the
  /// event-partitioning primitive of the live pipeline.
  [[nodiscard]] std::optional<std::size_t> round_of(sim_time t) const;

  /// The earliest admissible start for `statistic` at or after `not_before`.
  [[nodiscard]] sim_time earliest_start(const std::string& statistic,
                                        sim_time not_before) const;

 private:
  std::vector<planned_round> rounds_;  // kept sorted by start
};

/// A uniform N-round schedule of one statistic: rounds of `duration_seconds`
/// separated by `gap_seconds`, starting at `start`. This is the shape a
/// deployment plan's `schedule rounds N duration D gap G` line declares;
/// repeats of one statistic may be adjacent (gap 0), exactly as the paper's
/// repeated daily measurements were.
[[nodiscard]] measurement_schedule make_uniform_schedule(
    std::string statistic, std::size_t rounds, std::int64_t duration_seconds,
    std::int64_t gap_seconds, sim_time start = sim_time{0});

}  // namespace tormet::core
