#include "src/core/schedule.h"

#include <algorithm>

#include "src/util/check.h"

namespace tormet::core {

std::vector<schedule_violation> measurement_schedule::violations_for(
    const planned_round& candidate) const {
  std::vector<schedule_violation> out;
  expects(candidate.duration_seconds > 0, "round duration must be positive");
  for (std::size_t i = 0; i < rounds_.size(); ++i) {
    const planned_round& existing = rounds_[i];
    // No overlap, ever (measurements never run in parallel).
    const bool overlaps = candidate.start < existing.end() &&
                          existing.start < candidate.end();
    if (overlaps) {
      out.push_back({i, rounds_.size(), "rounds overlap"});
      continue;
    }
    // Distinct statistics need the 24 h gap between windows.
    if (existing.statistic == candidate.statistic) continue;
    const std::int64_t gap = candidate.start >= existing.end()
                                 ? candidate.start - existing.end()
                                 : existing.start - candidate.end();
    if (gap < k_min_gap_seconds) {
      out.push_back({i, rounds_.size(),
                     "less than 24 h between distinct statistics"});
    }
  }
  return out;
}

void measurement_schedule::add(planned_round round) {
  const std::vector<schedule_violation> violations = violations_for(round);
  expects(violations.empty(),
          violations.empty() ? "ok" : violations.front().reason.c_str());
  rounds_.push_back(std::move(round));
  std::sort(rounds_.begin(), rounds_.end(),
            [](const planned_round& a, const planned_round& b) {
              return a.start < b.start;
            });
}

bool measurement_schedule::in_window(std::size_t index, sim_time t) const {
  expects(index < rounds_.size(), "round index out of range");
  const planned_round& r = rounds_[index];
  return t >= r.start && t < r.end();
}

std::optional<std::size_t> measurement_schedule::round_of(sim_time t) const {
  // rounds_ is sorted by start and windows never overlap, so the first
  // window starting at or before t is the only candidate.
  for (std::size_t i = rounds_.size(); i > 0; --i) {
    const planned_round& r = rounds_[i - 1];
    if (r.start > t) continue;
    if (t < r.end()) return i - 1;
    return std::nullopt;  // t is past this window but before the next start
  }
  return std::nullopt;
}

sim_time measurement_schedule::earliest_start(const std::string& statistic,
                                              sim_time not_before) const {
  planned_round candidate;
  candidate.statistic = statistic;
  candidate.start = not_before;
  // Advance past each conflict; rounds_ is sorted, so a single pass with
  // restart converges quickly for realistic plans.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const planned_round& existing : rounds_) {
      const bool overlaps = candidate.start < existing.end() &&
                            existing.start < candidate.end();
      const bool too_close =
          existing.statistic != statistic &&
          ((candidate.start >= existing.end() &&
            candidate.start - existing.end() < k_min_gap_seconds) ||
           (existing.start >= candidate.end() &&
            existing.start - candidate.end() < k_min_gap_seconds));
      if (overlaps || too_close) {
        const sim_time pushed =
            existing.end() + (existing.statistic == statistic
                                  ? 0
                                  : k_min_gap_seconds);
        if (pushed > candidate.start) {
          candidate.start = pushed;
          moved = true;
        }
      }
    }
  }
  return candidate.start;
}

measurement_schedule make_uniform_schedule(std::string statistic,
                                           std::size_t rounds,
                                           std::int64_t duration_seconds,
                                           std::int64_t gap_seconds,
                                           sim_time start) {
  expects(rounds >= 1, "a schedule needs at least one round");
  expects(duration_seconds > 0, "round duration must be positive");
  expects(gap_seconds >= 0, "round gap must be non-negative");
  measurement_schedule schedule;
  sim_time at = start;
  for (std::size_t i = 0; i < rounds; ++i) {
    schedule.add({statistic, at, duration_seconds});
    at += duration_seconds + gap_seconds;
  }
  return schedule;
}

}  // namespace tormet::core
