#include "src/core/instruments.h"

#include <unordered_map>

#include "src/util/bytes.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace tormet::core {

namespace {

/// True for the streams whose hostnames the paper calls primary domains:
/// a circuit's initial stream naming a hostname on a web port (§4.1).
[[nodiscard]] const tor::exit_stream_event* primary_domain_of(const tor::event& ev) {
  const auto* s = std::get_if<tor::exit_stream_event>(&ev.body);
  if (s == nullptr || !s->is_initial) return nullptr;
  if (s->kind != tor::address_kind::hostname) return nullptr;
  if (s->port != 80 && s->port != 443) return nullptr;
  return s;
}

/// Walks `hostname` and its parent domains through `index`, returning the
/// first match ("www.amazon.com" matches an entry for "amazon.com").
template <typename Map>
[[nodiscard]] auto find_by_suffix(const Map& index, std::string_view hostname)
    -> decltype(index.end()) {
  std::string_view rest = hostname;
  for (;;) {
    const auto it = index.find(std::string{rest});
    if (it != index.end()) return it;
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos) return index.end();
    rest.remove_prefix(dot + 1);
  }
}

}  // namespace

privcount::data_collector::instrument instrument_stream_taxonomy() {
  return [](const tor::event& ev, const auto& incr) {
    const auto* s = std::get_if<tor::exit_stream_event>(&ev.body);
    if (s == nullptr) return;
    incr("streams/total", 1);
    if (!s->is_initial) return;
    incr("streams/initial", 1);
    switch (s->kind) {
      case tor::address_kind::hostname: {
        incr("streams/initial/hostname", 1);
        const bool web = s->port == 80 || s->port == 443;
        incr(web ? "streams/initial/hostname/web"
                 : "streams/initial/hostname/other",
             1);
        break;
      }
      case tor::address_kind::ipv4:
        incr("streams/initial/ipv4", 1);
        break;
      case tor::address_kind::ipv6:
        incr("streams/initial/ipv6", 1);
        break;
    }
  };
}

privcount::data_collector::instrument instrument_domain_sets(
    std::string base, std::vector<domain_set> sets) {
  // domain -> (set index) with first-set-wins semantics.
  auto index = std::make_shared<std::unordered_map<std::string, std::size_t>>();
  auto names = std::make_shared<std::vector<std::string>>();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    names->push_back(base + "/" + sets[i].name);
    for (const auto& d : sets[i].domains) {
      index->emplace(d, i);  // emplace keeps the first set that claimed d
    }
  }
  const std::string other = base + "/other";
  return [index, names, other](const tor::event& ev, const auto& incr) {
    const auto* s = primary_domain_of(ev);
    if (s == nullptr) return;
    const auto it = find_by_suffix(*index, s->target);
    if (it == index->end()) {
      incr(other, 1);
    } else {
      incr((*names)[it->second], 1);
    }
  };
}

privcount::data_collector::instrument instrument_tld_histogram(
    std::string base, std::vector<std::string> tlds,
    std::shared_ptr<const workload::alexa_list> alexa, bool separate_torproject,
    std::shared_ptr<const workload::suffix_list> suffixes) {
  expects(suffixes != nullptr, "tld histogram needs a suffix list");
  auto tld_set = std::make_shared<std::unordered_map<std::string, std::string>>();
  for (const auto& tld : tlds) {
    (*tld_set)[tld] = base + "/" + tld;
  }
  const std::string other = base + "/other";
  const std::string torproject = base + "/torproject.org";
  return [tld_set, alexa, separate_torproject, suffixes, other, torproject](
             const tor::event& ev, const auto& incr) {
    const auto* s = primary_domain_of(ev);
    if (s == nullptr) return;
    if (separate_torproject &&
        workload::hostname_matches_domain(s->target, "torproject.org")) {
      incr(torproject, 1);
      return;
    }
    if (alexa != nullptr) {
      // Restrict to Alexa-listed domains: the hostname or a parent must be
      // a list entry.
      std::string_view rest = s->target;
      bool listed = false;
      for (;;) {
        if (alexa->contains(rest)) {
          listed = true;
          break;
        }
        const std::size_t dot = rest.find('.');
        if (dot == std::string_view::npos) break;
        rest.remove_prefix(dot + 1);
      }
      if (!listed) return;
    }
    const auto tld = workload::suffix_list::tld_of(s->target);
    if (!tld.has_value()) return;
    const auto it = tld_set->find(*tld);
    incr(it == tld_set->end() ? other : it->second, 1);
  };
}

privcount::data_collector::instrument instrument_entry_totals() {
  return [](const tor::event& ev, const auto& incr) {
    if (std::holds_alternative<tor::entry_connection_event>(ev.body)) {
      incr("entry/connections", 1);
    } else if (std::holds_alternative<tor::entry_circuit_event>(ev.body)) {
      incr("entry/circuits", 1);
    } else if (const auto* d = std::get_if<tor::entry_data_event>(&ev.body)) {
      incr("entry/bytes", d->bytes);
    }
  };
}

privcount::data_collector::instrument instrument_country_usage(
    std::shared_ptr<const workload::geoip_db> geo,
    std::vector<std::string> country_codes) {
  expects(geo != nullptr, "country usage needs a geoip db");
  auto wanted = std::make_shared<std::unordered_map<std::uint16_t, std::string>>();
  for (const auto& code : country_codes) {
    (*wanted)[geo->index_of(code)] = code;
  }
  return [geo, wanted](const tor::event& ev, const auto& incr) {
    std::uint32_t ip = 0;
    const char* suffix = nullptr;
    std::uint64_t amount = 1;
    bool is_dir_circuit = false;
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      ip = c->client_ip;
      suffix = "connections";
    } else if (const auto* ci = std::get_if<tor::entry_circuit_event>(&ev.body)) {
      ip = ci->client_ip;
      suffix = "circuits";
      is_dir_circuit = ci->kind == tor::circuit_kind::directory;
    } else if (const auto* d = std::get_if<tor::entry_data_event>(&ev.body)) {
      ip = d->client_ip;
      suffix = "bytes";
      amount = d->bytes;
    } else {
      return;
    }
    const auto it = wanted->find(geo->country_of(ip));
    if (it == wanted->end()) return;
    incr("country/" + it->second + "/" + suffix, amount);
    // Directory requests feed the Tor-Metrics-style baseline estimator
    // (stats/metrics_portal.h) — the §5.2 UAE-discrepancy comparison.
    if (is_dir_circuit) incr("country/" + it->second + "/dir-requests", amount);
  };
}

privcount::data_collector::instrument instrument_as_split(
    std::shared_ptr<const workload::geoip_db> geo,
    std::vector<std::uint32_t> top_asns) {
  expects(geo != nullptr, "as split needs a geoip db");
  auto top = std::make_shared<std::set<std::uint32_t>>(top_asns.begin(),
                                                       top_asns.end());
  return [geo, top](const tor::event& ev, const auto& incr) {
    std::uint32_t ip = 0;
    const char* suffix = nullptr;
    std::uint64_t amount = 1;
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      ip = c->client_ip;
      suffix = "connections";
    } else if (const auto* ci = std::get_if<tor::entry_circuit_event>(&ev.body)) {
      ip = ci->client_ip;
      suffix = "circuits";
    } else if (const auto* d = std::get_if<tor::entry_data_event>(&ev.body)) {
      ip = d->client_ip;
      suffix = "bytes";
      amount = d->bytes;
    } else {
      return;
    }
    const bool is_top = top->contains(geo->asn_of(ip));
    incr(std::string{"as/"} + (is_top ? "top1000/" : "other/") + suffix, amount);
  };
}

privcount::data_collector::instrument instrument_hsdir_descriptors(
    std::shared_ptr<const workload::ahmia_index> index) {
  expects(index != nullptr, "hsdir instrument needs an ahmia index");
  return [index](const tor::event& ev, const auto& incr) {
    if (std::holds_alternative<tor::hsdir_publish_event>(ev.body)) {
      incr("hsdir/publishes", 1);
      return;
    }
    const auto* f = std::get_if<tor::hsdir_fetch_event>(&ev.body);
    if (f == nullptr) return;
    incr("hsdir/fetch/total", 1);
    if (f->outcome == tor::fetch_outcome::success) {
      incr("hsdir/fetch/success", 1);
      incr(index->contains(f->address) ? "hsdir/fetch/success/public"
                                       : "hsdir/fetch/success/unknown",
           1);
    } else {
      incr("hsdir/fetch/failed", 1);
    }
  };
}

privcount::data_collector::instrument instrument_rendezvous() {
  return [](const tor::event& ev, const auto& incr) {
    const auto* r = std::get_if<tor::rend_circuit_event>(&ev.body);
    if (r == nullptr) return;
    incr("rend/circuits", 1);
    switch (r->outcome) {
      case tor::rend_outcome::succeeded:
        incr("rend/succeeded", 1);
        incr("rend/cells", r->payload_cells);
        break;
      case tor::rend_outcome::failed_conn_closed:
        incr("rend/conn-closed", 1);
        break;
      case tor::rend_outcome::failed_expired:
        incr("rend/expired", 1);
        break;
    }
  };
}

// ---------------------------------------------------------------------------
// PSC extractors
// ---------------------------------------------------------------------------

psc::data_collector::extractor extract_client_ip() {
  return [](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return "ip:" + std::to_string(c->client_ip);
    }
    return std::nullopt;
  };
}

psc::data_collector::extractor extract_client_country(
    std::shared_ptr<const workload::geoip_db> geo) {
  expects(geo != nullptr, "country extractor needs a geoip db");
  return [geo](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return "cc:" + geo->countries()[geo->country_of(c->client_ip)].code;
    }
    return std::nullopt;
  };
}

psc::data_collector::extractor extract_client_asn(
    std::shared_ptr<const workload::geoip_db> geo) {
  expects(geo != nullptr, "asn extractor needs a geoip db");
  return [geo](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* c = std::get_if<tor::entry_connection_event>(&ev.body)) {
      return "as:" + std::to_string(geo->asn_of(c->client_ip));
    }
    return std::nullopt;
  };
}

psc::data_collector::extractor extract_primary_sld(
    std::shared_ptr<const workload::suffix_list> suffixes,
    std::shared_ptr<const workload::alexa_list> alexa) {
  expects(suffixes != nullptr, "sld extractor needs a suffix list");
  return [suffixes, alexa](const tor::event& ev) -> std::optional<std::string> {
    const auto* s = primary_domain_of(ev);
    if (s == nullptr) return std::nullopt;
    const auto sld = suffixes->sld_of(s->target);
    if (!sld.has_value()) return std::nullopt;
    if (alexa != nullptr) {
      // Restrict to SLDs of Alexa-listed domains.
      std::string_view rest = s->target;
      bool listed = false;
      for (;;) {
        if (alexa->contains(rest)) {
          listed = true;
          break;
        }
        const std::size_t dot = rest.find('.');
        if (dot == std::string_view::npos) break;
        rest.remove_prefix(dot + 1);
      }
      if (!listed) return std::nullopt;
    }
    return "sld:" + *sld;
  };
}

psc::data_collector::extractor extract_published_address() {
  return [](const tor::event& ev) -> std::optional<std::string> {
    if (const auto* p = std::get_if<tor::hsdir_publish_event>(&ev.body)) {
      return "pub:" + p->address.value;
    }
    return std::nullopt;
  };
}

psc::data_collector::extractor extract_fetched_address() {
  return [](const tor::event& ev) -> std::optional<std::string> {
    const auto* f = std::get_if<tor::hsdir_fetch_event>(&ev.body);
    if (f == nullptr || f->outcome != tor::fetch_outcome::success) {
      return std::nullopt;
    }
    return "fetch:" + f->address.value;
  };
}

// ---------------------------------------------------------------------------
// Name registry
// ---------------------------------------------------------------------------

namespace {

/// Canonical parameters of the registered parameterized instruments. These
/// are frozen: every process of a distributed round (and the in-process
/// reference) must instantiate bit-identical measurements from the name
/// alone.
const std::vector<std::string>& canonical_tlds() {
  // Fig 3's measured TLD list.
  static const std::vector<std::string> tlds{
      "com", "org", "net", "br", "cn", "de", "fr", "in", "ir", "it", "jp",
      "pl", "ru", "uk"};
  return tlds;
}

constexpr std::size_t k_canonical_alexa_size = 20'000;
constexpr std::uint64_t k_canonical_alexa_seed = 3;

const std::shared_ptr<const workload::alexa_list>& canonical_alexa() {
  static const auto list = std::make_shared<const workload::alexa_list>(
      workload::alexa_list::make_synthetic(
          {.size = k_canonical_alexa_size, .seed = k_canonical_alexa_seed}));
  return list;
}

/// Fig 2's rank buckets over the canonical Alexa list: torproject.org
/// apart, then (0,10], (10,100], (100,1000], (1000,10000].
std::vector<domain_set> canonical_rank_sets() {
  const workload::alexa_list& alexa = *canonical_alexa();
  std::vector<domain_set> sets;
  sets.push_back({"torproject.org", {"torproject.org"}});
  std::uint32_t lo = 0;
  for (std::uint32_t hi = 10; hi <= alexa.size(); hi *= 10) {
    domain_set set;
    set.name = "(" + std::to_string(lo) + "," + std::to_string(hi) + "]";
    set.domains.reserve(hi - lo);
    for (std::uint32_t rank = lo + 1; rank <= hi; ++rank) {
      const std::string& d = alexa.domain_at_rank(rank);
      if (d != "torproject.org") set.domains.push_back(d);
    }
    sets.push_back(std::move(set));
    lo = hi;
  }
  return sets;
}

const std::vector<std::string>& canonical_rank_set_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& set : canonical_rank_sets()) out.push_back(set.name);
    return out;
  }();
  return names;
}

/// The ahmia index over the canonical synthetic service universe. Onion
/// addresses are a pure function of the service's creation index
/// (tor::network::add_onion_service), so indexing a prefix of that
/// universe deterministically classifies any simulated trace's services;
/// the paper found 56.8 % of fetched services in ahmia's index.
constexpr std::size_t k_canonical_service_universe = 4096;
constexpr double k_ahmia_public_fraction = 0.568;
constexpr std::uint64_t k_canonical_ahmia_seed = 4242;

const std::shared_ptr<const workload::ahmia_index>& canonical_ahmia() {
  static const auto index = [] {
    std::vector<tor::onion_address> universe;
    universe.reserve(k_canonical_service_universe);
    for (std::size_t i = 0; i < k_canonical_service_universe; ++i) {
      const std::string key_material =
          "tormet.service.key." + std::to_string(i);
      universe.push_back(tor::derive_onion_address(as_bytes(key_material)));
    }
    rng r{k_canonical_ahmia_seed};
    return std::make_shared<const workload::ahmia_index>(
        workload::ahmia_index::make(universe, k_ahmia_public_fraction, r));
  }();
  return index;
}

const std::shared_ptr<const workload::suffix_list>& canonical_suffixes() {
  static const auto suffixes = std::make_shared<const workload::suffix_list>(
      workload::suffix_list::embedded());
  return suffixes;
}

/// stream_taxonomy compiled to slab slots: one variant probe and 2-4 array
/// increments per event, no string handling — the shape the >=50M ev/s
/// ingest target needs. Emits exactly the increments of
/// instrument_stream_taxonomy().
class batch_stream_taxonomy final : public privcount::batch_instrument {
 public:
  void bind(const privcount::slot_resolver& slot_of) override {
    total_ = slot_of("streams/total");
    initial_ = slot_of("streams/initial");
    hostname_ = slot_of("streams/initial/hostname");
    ipv4_ = slot_of("streams/initial/ipv4");
    ipv6_ = slot_of("streams/initial/ipv6");
    web_ = slot_of("streams/initial/hostname/web");
    other_ = slot_of("streams/initial/hostname/other");
  }

  void ingest(const tor::event* const* evs, std::size_t n,
              std::uint64_t* slab) override {
    for (std::size_t i = 0; i < n; ++i) step(*evs[i], slab);
  }

  void ingest_span(const tor::event* evs, std::size_t n,
                   std::uint64_t* slab) override {
    for (std::size_t i = 0; i < n; ++i) step(evs[i], slab);
  }

 private:
  void step(const tor::event& ev, std::uint64_t* slab) const {
    const auto* s = std::get_if<tor::exit_stream_event>(&ev.body);
    if (s == nullptr) return;
    ++slab[total_];
    if (!s->is_initial) return;
    ++slab[initial_];
    switch (s->kind) {
      case tor::address_kind::hostname:
        ++slab[hostname_];
        ++slab[(s->port == 80 || s->port == 443) ? web_ : other_];
        break;
      case tor::address_kind::ipv4:
        ++slab[ipv4_];
        break;
      case tor::address_kind::ipv6:
        ++slab[ipv6_];
        break;
    }
  }

  std::size_t total_ = 0, initial_ = 0, hostname_ = 0, ipv4_ = 0, ipv6_ = 0,
              web_ = 0, other_ = 0;
};

/// entry_totals compiled to slab slots (see instrument_entry_totals()).
class batch_entry_totals final : public privcount::batch_instrument {
 public:
  void bind(const privcount::slot_resolver& slot_of) override {
    connections_ = slot_of("entry/connections");
    circuits_ = slot_of("entry/circuits");
    bytes_ = slot_of("entry/bytes");
  }

  void ingest(const tor::event* const* evs, std::size_t n,
              std::uint64_t* slab) override {
    for (std::size_t i = 0; i < n; ++i) step(*evs[i], slab);
  }

  void ingest_span(const tor::event* evs, std::size_t n,
                   std::uint64_t* slab) override {
    for (std::size_t i = 0; i < n; ++i) step(evs[i], slab);
  }

 private:
  void step(const tor::event& ev, std::uint64_t* slab) const {
    const auto& body = ev.body;
    if (std::holds_alternative<tor::entry_connection_event>(body)) {
      ++slab[connections_];
    } else if (std::holds_alternative<tor::entry_circuit_event>(body)) {
      ++slab[circuits_];
    } else if (const auto* d = std::get_if<tor::entry_data_event>(&body)) {
      slab[bytes_] += d->bytes;
    }
  }

  std::size_t connections_ = 0, circuits_ = 0, bytes_ = 0;
};

}  // namespace

std::unique_ptr<privcount::batch_instrument> make_batch_instrument(
    const std::string& name) {
  if (name == "stream_taxonomy") return std::make_unique<batch_stream_taxonomy>();
  if (name == "entry_totals") return std::make_unique<batch_entry_totals>();
  return nullptr;
}

const std::vector<std::string>& instrument_names() {
  static const std::vector<std::string> names{
      "stream_taxonomy", "entry_totals", "rendezvous",
      "tld_histogram",   "domain_sets",  "hsdir_ahmia"};
  return names;
}

privcount::data_collector::instrument instrument_by_name(
    const std::string& name) {
  if (name == "stream_taxonomy") return instrument_stream_taxonomy();
  if (name == "entry_totals") return instrument_entry_totals();
  if (name == "rendezvous") return instrument_rendezvous();
  if (name == "tld_histogram") {
    return instrument_tld_histogram("tld", canonical_tlds(), nullptr,
                                    /*separate_torproject=*/true,
                                    canonical_suffixes());
  }
  if (name == "domain_sets") {
    return instrument_domain_sets("sites", canonical_rank_sets());
  }
  if (name == "hsdir_ahmia") {
    return instrument_hsdir_descriptors(canonical_ahmia());
  }
  throw precondition_error{"unknown instrument: " + name};
}

std::vector<privcount::counter_spec> default_specs_for(
    const std::string& instrument_name) {
  // Sensitivities follow the paper's action bounds (Table 1: 20 domains per
  // user-day, 12 connections, 651 circuits; stream totals bound by
  // 20 domains x ~20 streams). Expected values are magnitude guesses for
  // the equal-relative-noise budget split — operators tune them per round.
  if (instrument_name == "stream_taxonomy") {
    return {{"streams/total", 400.0, 6e4},
            {"streams/initial", 20.0, 3e3},
            {"streams/initial/hostname", 20.0, 3e3},
            {"streams/initial/ipv4", 20.0, 500},
            {"streams/initial/ipv6", 20.0, 500},
            {"streams/initial/hostname/web", 20.0, 3e3},
            {"streams/initial/hostname/other", 20.0, 500}};
  }
  if (instrument_name == "entry_totals") {
    return {{"entry/connections", 12.0, 2e3},
            {"entry/circuits", 651.0, 1.7e4},
            {"entry/bytes", 407e6, 7e9}};
  }
  if (instrument_name == "rendezvous") {
    return {{"rend/circuits", 651.0, 1e4},
            {"rend/succeeded", 651.0, 1e3},
            {"rend/conn-closed", 651.0, 500},
            {"rend/expired", 651.0, 1e4},
            {"rend/cells", 1e6, 1e6}};
  }
  if (instrument_name == "tld_histogram") {
    std::vector<privcount::counter_spec> specs;
    for (const auto& tld : canonical_tlds()) {
      specs.push_back({"tld/" + tld, 20.0, 500});
    }
    specs.push_back({"tld/other", 20.0, 500});
    specs.push_back({"tld/torproject.org", 20.0, 5e3});
    return specs;
  }
  if (instrument_name == "domain_sets") {
    std::vector<privcount::counter_spec> specs;
    for (const auto& set_name : canonical_rank_set_names()) {
      specs.push_back({"sites/" + set_name, 20.0, 1e3});
    }
    specs.push_back({"sites/other", 20.0, 3e3});
    return specs;
  }
  if (instrument_name == "hsdir_ahmia") {
    return {{"hsdir/publishes", 24.0, 2e3},
            {"hsdir/fetch/total", 10.0, 1e3},
            {"hsdir/fetch/success", 10.0, 1e3},
            {"hsdir/fetch/failed", 10.0, 1e3},
            {"hsdir/fetch/success/public", 10.0, 500},
            {"hsdir/fetch/success/unknown", 10.0, 500}};
  }
  throw precondition_error{"unknown instrument: " + instrument_name};
}

const std::vector<std::string>& extractor_names() {
  static const std::vector<std::string> names{
      "client_ip",   "client_country",    "client_asn",
      "primary_sld", "published_address", "fetched_address"};
  return names;
}

psc::data_collector::extractor extractor_by_name(const std::string& name) {
  if (name == "client_ip") return extract_client_ip();
  if (name == "client_country") {
    return extract_client_country(std::make_shared<const workload::geoip_db>(
        workload::geoip_db::make_synthetic()));
  }
  if (name == "client_asn") {
    return extract_client_asn(std::make_shared<const workload::geoip_db>(
        workload::geoip_db::make_synthetic()));
  }
  if (name == "primary_sld") {
    return extract_primary_sld(std::make_shared<const workload::suffix_list>(
                                   workload::suffix_list::embedded()),
                               nullptr);
  }
  if (name == "published_address") return extract_published_address();
  if (name == "fetched_address") return extract_fetched_address();
  throw precondition_error{"unknown extractor: " + name};
}

}  // namespace tormet::core
