// The unified ingest surface of a data collector: every consumer of
// measurement events — cli::node_runner's windowed replay, the
// orchestrator's in-process reference round, the relay publish
// aggregator (relay::aggregator replays many relays' decoded window
// files as one merged span), benches, soak tests — feeds observed
// tor::events through this one polymorphic interface instead of
// branching on the protocol. Both privcount::data_collector and
// psc::data_collector implement it.
//
// Contract (shared by every implementation):
//   * observe(ev) and ingest(span) are equivalent: ingesting a span is
//     byte-identical to observing its events one by one.
//   * set_shards / set_thread_pool are pure throughput knobs. Tally bytes
//     never depend on the shard count, the worker count, or how the pool
//     schedules shard work — partitions are keyed by stable per-event
//     hashes and merges are commutative (PrivCount slab addition) or
//     per-bin order-preserving (PSC last-insert-wins seeded inserts).
//   * Ingest-plane reconfiguration is a between-rounds operation: while a
//     round is active the implementation rejects (or defers to the next
//     round's configure) any shard/pool change — see each collector's
//     set_shards documentation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/tor/events.h"
#include "src/util/thread_pool.h"

namespace tormet::core {

class event_sink {
 public:
  virtual ~event_sink() = default;

  /// Feeds one observed event.
  virtual void observe(const tor::event& ev) = 0;

  /// Feeds a contiguous span of observed events — the hot path. The span
  /// is only borrowed for the duration of the call. Equivalent to
  /// observe() per event at a fraction of the cost.
  virtual void ingest(const tor::event* evs, std::size_t n) = 0;

  /// Number of ingest shards (>= 1) events are hash-partitioned across.
  virtual void set_shards(std::size_t n) = 0;
  [[nodiscard]] virtual std::size_t shards() const noexcept = 0;

  /// Worker pool the ingest shards run on (nullptr = all shards execute on
  /// the calling thread). Output bytes are identical with and without a
  /// pool, for every pool size.
  virtual void set_thread_pool(std::shared_ptr<util::thread_pool> pool) = 0;

  /// Events seen while a round was collecting, across all rounds —
  /// observability for trace-replay deployments (only the total is kept).
  [[nodiscard]] virtual std::uint64_t events_observed() const noexcept = 0;
};

}  // namespace tormet::core
