// The top-level public API: a measurement study owns a simulated Tor
// network and the set of instrumented ("measured") relays, mirroring the
// paper's deployment of 16 relays (6 exit + 10 non-exit) contributing a few
// percent of network weight. Benches and examples compose a study with a
// PrivCount or PSC deployment and the workload drivers.
//
// Quickstart:
//   core::measurement_study study{core::study_config{}};
//   net::inproc_net bus;
//   privcount::deployment pc{bus, study.privcount_config()};
//   pc.add_instrument(core::instrument_entry_totals());
//   pc.attach(study.network());
//   auto results = pc.run_round(specs, [&] { /* generate traffic */ });
//   auto total = stats::extrapolate_by_fraction(
//       stats::normal_estimate(value, sigma),
//       study.fraction(tor::position::guard));
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "src/privcount/deployment.h"
#include "src/psc/deployment.h"
#include "src/tor/network.h"

namespace tormet::core {

struct study_config {
  tor::consensus_params consensus{};
  /// Measurement relay counts (paper §3.1: 16 relays, 6 of them exits).
  std::size_t num_exit_relays = 6;
  std::size_t num_nonexit_relays = 10;
  /// Weight-fraction targets for the measured sets (paper: exit weight
  /// 1.5-2.4 %, entry probability ~1.2-1.4 %).
  double target_exit_fraction = 0.02;
  double target_guard_fraction = 0.013;
  std::uint64_t seed = 20180101;
};

class measurement_study {
 public:
  explicit measurement_study(const study_config& config);

  [[nodiscard]] tor::network& network() noexcept { return network_; }
  [[nodiscard]] const tor::consensus& net() const noexcept {
    return network_.net();
  }

  /// All 16 measured relays / the exit subset / the guard-flagged subset /
  /// the HSDir-flagged subset.
  [[nodiscard]] const std::vector<tor::relay_id>& measured_relays() const noexcept {
    return measured_;
  }
  [[nodiscard]] std::vector<tor::relay_id> measured_exits() const;
  [[nodiscard]] std::vector<tor::relay_id> measured_guards() const;
  [[nodiscard]] std::vector<tor::relay_id> measured_hsdirs() const;

  /// Combined selection probability of the measured set for a position —
  /// the inference divisor of §3.3.
  [[nodiscard]] double fraction(tor::position pos) const;
  [[nodiscard]] double fraction(tor::position pos,
                                const std::vector<tor::relay_id>& relays) const;
  /// HSDir-ring responsibility fraction of the measured HSDirs (Table 6's
  /// publish/fetch weight).
  [[nodiscard]] double hsdir_fraction() const;

  /// Deployment configs pre-filled with the measured relays.
  [[nodiscard]] privcount::deployment_config privcount_config() const;
  [[nodiscard]] psc::deployment_config psc_config() const;

 private:
  void select_measured_relays(const study_config& config);

  tor::network network_;
  std::vector<tor::relay_id> measured_;
};

}  // namespace tormet::core
