// The measurement catalogue: canonical PrivCount instruments (event ->
// counter increments) and PSC extractors (event -> distinct item) for every
// statistic in the paper's evaluation. Benches, examples, and tests compose
// these with deployments instead of hand-writing event matching.
//
// Counter naming convention: "<area>/<statistic>[/<bin>]"; the functions
// below document the names they emit so callers can build matching
// counter_spec lists (see specs_* helpers).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/privcount/data_collector.h"
#include "src/psc/data_collector.h"
#include "src/workload/ahmia.h"
#include "src/workload/alexa.h"
#include "src/workload/geoip.h"
#include "src/workload/suffix_list.h"

namespace tormet::core {

// ---------------------------------------------------------------------------
// PrivCount instruments
// ---------------------------------------------------------------------------

/// Fig 1 stream taxonomy. Counters: streams/total, streams/initial,
/// streams/initial/hostname, streams/initial/ipv4, streams/initial/ipv6,
/// streams/initial/hostname/web, streams/initial/hostname/other.
[[nodiscard]] privcount::data_collector::instrument instrument_stream_taxonomy();

/// A named set of domains for membership counting (Fig 2's rank and
/// sibling sets).
struct domain_set {
  std::string name;
  std::vector<std::string> domains;
};

/// Counts primary domains (initial stream + hostname + web port, §4.1) by
/// set membership. A hostname matches a set when it equals or is a
/// subdomain of any member; the *first* matching set (in the given order)
/// wins. Counters: <base>/<set-name> for each set and <base>/other.
[[nodiscard]] privcount::data_collector::instrument instrument_domain_sets(
    std::string base, std::vector<domain_set> sets);

/// Fig 3 TLD histogram over primary domains. Counters: <base>/<tld> for
/// each given TLD, <base>/other, and (when `separate_torproject`)
/// <base>/torproject.org counted apart. When `alexa` is non-null only
/// list-member domains are counted (the figure's second series).
[[nodiscard]] privcount::data_collector::instrument instrument_tld_histogram(
    std::string base, std::vector<std::string> tlds,
    std::shared_ptr<const workload::alexa_list> alexa, bool separate_torproject,
    std::shared_ptr<const workload::suffix_list> suffixes);

/// Table 4 entry-side totals. Counters: entry/connections, entry/circuits,
/// entry/bytes.
[[nodiscard]] privcount::data_collector::instrument instrument_entry_totals();

/// Fig 4 per-country usage. Counters: country/<CC>/connections,
/// country/<CC>/bytes, country/<CC>/circuits, country/<CC>/dir-requests
/// (directory circuits only — the Tor-Metrics baseline input) for each
/// listed code.
[[nodiscard]] privcount::data_collector::instrument instrument_country_usage(
    std::shared_ptr<const workload::geoip_db> geo,
    std::vector<std::string> country_codes);

/// §5.2 AS hotspot counters: as/top1000/{connections,bytes,circuits} vs
/// as/other/{...} split by whether the client ASN is in `top_asns`.
[[nodiscard]] privcount::data_collector::instrument instrument_as_split(
    std::shared_ptr<const workload::geoip_db> geo,
    std::vector<std::uint32_t> top_asns);

/// Table 7 HSDir descriptor counters: hsdir/publishes, hsdir/fetch/total,
/// hsdir/fetch/success, hsdir/fetch/failed, hsdir/fetch/success/public,
/// hsdir/fetch/success/unknown (public = present in the ahmia index).
[[nodiscard]] privcount::data_collector::instrument instrument_hsdir_descriptors(
    std::shared_ptr<const workload::ahmia_index> index);

/// Table 8 rendezvous counters: rend/circuits, rend/succeeded,
/// rend/conn-closed, rend/expired, rend/cells (payload cells on successful
/// circuits).
[[nodiscard]] privcount::data_collector::instrument instrument_rendezvous();

// ---------------------------------------------------------------------------
// PSC extractors (distinct-item measurements)
// ---------------------------------------------------------------------------

/// Unique client IPs at guards (Table 5).
[[nodiscard]] psc::data_collector::extractor extract_client_ip();

/// Unique client countries (Table 5) via the GeoIP substitute.
[[nodiscard]] psc::data_collector::extractor extract_client_country(
    std::shared_ptr<const workload::geoip_db> geo);

/// Unique client ASes (Table 5).
[[nodiscard]] psc::data_collector::extractor extract_client_asn(
    std::shared_ptr<const workload::geoip_db> geo);

/// Unique SLDs of primary domains (Table 2). When `alexa` is non-null,
/// restricted to SLDs of Alexa-listed domains.
[[nodiscard]] psc::data_collector::extractor extract_primary_sld(
    std::shared_ptr<const workload::suffix_list> suffixes,
    std::shared_ptr<const workload::alexa_list> alexa);

/// Unique onion addresses published to our HSDirs (Table 6).
[[nodiscard]] psc::data_collector::extractor extract_published_address();

/// Unique onion addresses successfully fetched from our HSDirs (Table 6).
[[nodiscard]] psc::data_collector::extractor extract_fetched_address();

// ---------------------------------------------------------------------------
// Name registry
// ---------------------------------------------------------------------------
// Deployment plans (cli::deployment_plan) reference instruments and
// extractors by name, so every process of a distributed round — and the
// in-process reference round — resolves the identical measurement from the
// same plan text. Every registered entry is self-contained: its auxiliary
// inputs are rebuilt deterministically with no per-round parameters.
// Parameterized instruments are registered through canonical
// instantiations:
//   "tld_histogram" — Fig 3's measured TLD list over the embedded suffix
//       list, torproject.org separated, no Alexa filter.
//   "domain_sets"   — Fig 2's rank buckets ((0,10], (10,100], ...) over the
//       canonical synthetic Alexa list, torproject.org separated.
//   "hsdir_ahmia"   — Table 7's HSDir fetch classification against a
//       deterministic ahmia index covering the paper's 56.8 % of the
//       canonical synthetic service universe.
// Instantiations with round-specific parameters still compose in code.

/// Registered instrument names: "stream_taxonomy", "entry_totals",
/// "rendezvous", "tld_histogram", "domain_sets", "hsdir_ahmia".
[[nodiscard]] const std::vector<std::string>& instrument_names();
/// Slot-compiled fast path for a registered instrument when one exists
/// ("stream_taxonomy", "entry_totals" — the hot ingest counters), else
/// nullptr; callers fall back to wrapping instrument_by_name. Compiled and
/// wrapped forms produce identical increments.
[[nodiscard]] std::unique_ptr<privcount::batch_instrument> make_batch_instrument(
    const std::string& name);
/// Resolves a registered instrument; throws precondition_error on an
/// unknown name.
[[nodiscard]] privcount::data_collector::instrument instrument_by_name(
    const std::string& name);
/// Canonical counter specs for a registered instrument — the counters its
/// increments feed, with paper-derived default sensitivities. A plan built
/// from these measures everything the instrument emits.
[[nodiscard]] std::vector<privcount::counter_spec> default_specs_for(
    const std::string& instrument_name);

/// Registered extractor names: "client_ip", "client_country", "client_asn",
/// "primary_sld", "published_address", "fetched_address".
[[nodiscard]] const std::vector<std::string>& extractor_names();
/// Resolves a registered extractor (rebuilding its GeoIP/suffix-list inputs
/// deterministically); throws precondition_error on an unknown name.
[[nodiscard]] psc::data_collector::extractor extractor_by_name(
    const std::string& name);

}  // namespace tormet::core
