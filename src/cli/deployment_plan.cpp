#include "src/cli/deployment_plan.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "src/core/instruments.h"
#include "src/util/check.h"
#include "src/workload/scenario.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {

namespace {

constexpr std::string_view k_magic = "tormet-plan-v1";

[[nodiscard]] std::string_view backend_name(crypto::group_backend b) {
  return b == crypto::group_backend::toy ? "toy" : "p256";
}

[[nodiscard]] crypto::group_backend parse_backend(std::string_view s) {
  if (s == "toy") return crypto::group_backend::toy;
  if (s == "p256") return crypto::group_backend::p256;
  throw precondition_error{"unknown group backend: " + std::string{s}};
}

}  // namespace

std::string_view role_name(node_role role) {
  switch (role) {
    case node_role::psc_ts: return "psc_ts";
    case node_role::psc_cp: return "psc_cp";
    case node_role::psc_dc: return "psc_dc";
    case node_role::privcount_ts: return "privcount_ts";
    case node_role::privcount_sk: return "privcount_sk";
    case node_role::privcount_dc: return "privcount_dc";
  }
  throw invariant_error{"unhandled node_role"};
}

node_role parse_role(std::string_view name) {
  for (const auto role :
       {node_role::psc_ts, node_role::psc_cp, node_role::psc_dc,
        node_role::privcount_ts, node_role::privcount_sk,
        node_role::privcount_dc}) {
    if (role_name(role) == name) return role;
  }
  throw precondition_error{"unknown node role: " + std::string{name}};
}

const node_spec& deployment_plan::node(net::node_id id) const {
  for (const auto& n : nodes) {
    if (n.id == id) return n;
  }
  throw precondition_error{"plan has no node " + std::to_string(id)};
}

std::vector<net::node_id> deployment_plan::ids_with(node_role role) const {
  std::vector<net::node_id> out;
  for (const auto& n : nodes) {
    if (n.role == role) out.push_back(n.id);
  }
  return out;
}

std::map<net::node_id, net::tcp_endpoint> deployment_plan::endpoints() const {
  std::map<net::node_id, net::tcp_endpoint> out;
  for (const auto& n : nodes) out[n.id] = net::tcp_endpoint{n.host, n.port};
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

net::node_id deployment_plan::tally_server_id() const {
  for (const auto& n : nodes) {
    if (n.role == node_role::psc_ts || n.role == node_role::privcount_ts) {
      return n.id;
    }
  }
  throw precondition_error{"plan has no tally-server node"};
}

std::string_view workload_kind_name(workload_kind kind) {
  switch (kind) {
    case workload_kind::synthetic: return "synthetic";
    case workload_kind::trace: return "trace";
    case workload_kind::generate: return "generate";
    case workload_kind::socket: return "socket";
    case workload_kind::scenario: return "scenario";
    case workload_kind::relays: return "relays";
  }
  throw invariant_error{"unhandled workload_kind"};
}

std::string serialize_plan(const deployment_plan& plan) {
  std::ostringstream out;
  out << k_magic << "\n";
  out << "protocol " << plan.protocol << "\n";
  out << "seed " << plan.rng_seed << "\n";
  out << "round_deadline_ms " << plan.round_deadline_ms << "\n";
  out << "tally " << plan.tally_path << "\n";
  out << "workload " << workload_kind_name(plan.workload.kind);
  switch (plan.workload.kind) {
    case workload_kind::synthetic:
      break;
    case workload_kind::trace:
      out << " " << plan.workload.trace_dir;
      break;
    case workload_kind::generate:
      out << " " << plan.workload.model << " "
          << format_double(plan.workload.scale) << " " << plan.workload.events
          << " " << plan.workload.gen_seed;
      // Optional trailing field, omitted at its default so pre-multi-day
      // plans serialize (and hand-written ones parse) unchanged.
      if (plan.workload.gen_days > 1) out << " " << plan.workload.gen_days;
      break;
    case workload_kind::socket:
      out << " " << plan.workload.event_port_base;
      break;
    case workload_kind::scenario:
      // One comma-joined token: `scenario <name>,<scale>,<events>,<seed>
      // [,<days>]`, the days field omitted at its default like generate's.
      out << " " << plan.workload.model << ","
          << format_double(plan.workload.scale) << "," << plan.workload.events
          << "," << plan.workload.gen_seed;
      if (plan.workload.gen_days > 1) out << "," << plan.workload.gen_days;
      break;
    case workload_kind::relays:
      // `relays <count>,<model>,<scale>,<events>,<seed>[,<days>]`: the
      // generate fields behind a leading fleet size, comma-joined like
      // scenario's token.
      out << " " << plan.workload.relay_count << "," << plan.workload.model
          << "," << format_double(plan.workload.scale) << ","
          << plan.workload.events << "," << plan.workload.gen_seed;
      if (plan.workload.gen_days > 1) out << "," << plan.workload.gen_days;
      break;
  }
  out << "\n";
  // Omitted at the all-default single-round shape, so classic plans
  // serialize unchanged (and stay readable by pre-schedule parsers).
  if (plan.schedule_rounds != 1 ||
      plan.round_duration_s != k_measurement_round_seconds ||
      plan.round_gap_s != 0) {
    out << "schedule rounds " << plan.schedule_rounds << " duration "
        << plan.round_duration_s << " gap " << plan.round_gap_s << "\n";
  }
  if (plan.dc_grace_ms > 0) out << "dc_grace_ms " << plan.dc_grace_ms << "\n";
  // Durability keys are omitted for classic (non-durable) plans so existing
  // plan files round-trip unchanged.
  if (!plan.durable_dir.empty()) out << "durable_dir " << plan.durable_dir << "\n";
  if (plan.checkpoint_every != 8) {
    out << "checkpoint_every " << plan.checkpoint_every << "\n";
  }
  // Ingest-shard count is a per-process tuning knob: it never changes tally
  // bytes, so single-shard plans round-trip without the key.
  if (plan.dc_shards != 1) out << "dc_shards " << plan.dc_shards << "\n";
  if (plan.dc_ingest_threads != 0) {
    out << "dc_ingest_threads " << plan.dc_ingest_threads << "\n";
  }
  // Relay sampling keeps everything by default; the key only appears when
  // a fleet actually samples, so pre-relay plans round-trip unchanged.
  if (plan.sample_prob != 1.0) {
    out << "sample_prob " << format_double(plan.sample_prob) << "\n";
  }
  if (plan.max_restarts != 5) {
    out << "max_restarts " << plan.max_restarts << "\n";
  }
  if (plan.pace != 0.0) out << "pace " << format_double(plan.pace) << "\n";
  out << "psc_extractor " << plan.psc_extractor << "\n";
  for (const auto& name : plan.instruments) {
    out << "instrument " << name << "\n";
  }
  out << "items_per_dc " << plan.items_per_dc << "\n";
  out << "shared_items " << plan.shared_items << "\n";
  out << "bins " << plan.round.bins << "\n";
  out << "sensitivity " << format_double(plan.round.sensitivity) << "\n";
  out << "epsilon " << format_double(plan.privacy.epsilon) << "\n";
  out << "delta " << format_double(plan.privacy.delta) << "\n";
  out << "psc_epsilon " << format_double(plan.round.privacy.epsilon) << "\n";
  out << "psc_delta " << format_double(plan.round.privacy.delta) << "\n";
  out << "group " << backend_name(plan.round.group) << "\n";
  out << "noise_constant " << format_double(plan.round.noise_constant) << "\n";
  out << "psc_noise " << (plan.round.noise_enabled ? "on" : "off") << "\n";
  out << "privcount_noise " << (plan.privcount_noise_enabled ? "on" : "off")
      << "\n";
  for (const auto& c : plan.counters) {
    out << "counter " << c.name << " " << format_double(c.sensitivity) << " "
        << format_double(c.expected_value) << "\n";
  }
  for (const auto& n : plan.nodes) {
    out << "node " << n.id << " " << role_name(n.role) << " " << n.host << " "
        << n.port << "\n";
  }
  return out.str();
}

deployment_plan parse_plan(std::string_view text) {
  deployment_plan plan;
  plan.nodes.clear();
  plan.counters.clear();

  std::istringstream in{std::string{text}};
  std::string line;
  int line_no = 0;
  bool saw_magic = false;
  const auto fail = [&](const std::string& why) {
    throw precondition_error{"plan line " + std::to_string(line_no) + ": " + why};
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      if (line != k_magic) fail("expected header '" + std::string{k_magic} + "'");
      saw_magic = true;
      continue;
    }
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    const auto want = [&](bool ok) {
      if (!ok || ls.fail()) fail("malformed '" + key + "' entry");
    };
    if (key == "protocol") {
      ls >> plan.protocol;
      want(plan.protocol == "psc" || plan.protocol == "privcount");
    } else if (key == "seed") {
      ls >> plan.rng_seed;
      want(true);
    } else if (key == "round_deadline_ms") {
      ls >> plan.round_deadline_ms;
      want(plan.round_deadline_ms > 0);
    } else if (key == "tally") {
      // Rest of the line: tally paths may contain spaces (e.g. a TMPDIR
      // under "My Files"); all other values are single tokens.
      std::getline(ls >> std::ws, plan.tally_path);
      want(!plan.tally_path.empty());
    } else if (key == "workload") {
      std::string kind;
      ls >> kind;
      if (kind == "synthetic") {
        plan.workload = workload_spec{};
      } else if (kind == "trace") {
        plan.workload.kind = workload_kind::trace;
        // Rest of the line: directories may contain spaces, like tally.
        std::getline(ls >> std::ws, plan.workload.trace_dir);
        want(!plan.workload.trace_dir.empty());
      } else if (kind == "generate") {
        plan.workload.kind = workload_kind::generate;
        ls >> plan.workload.model >> plan.workload.scale >>
            plan.workload.events >> plan.workload.gen_seed;
        want(workload::is_known_trace_model(plan.workload.model) &&
             plan.workload.scale > 0.0);
        // Optional fifth field: days of population churn (default 1).
        std::uint64_t days = 0;
        if (ls >> days) {
          if (days < 1) fail("generate days must be >= 1");
          plan.workload.gen_days = days;
        }
      } else if (kind == "socket") {
        plan.workload.kind = workload_kind::socket;
        unsigned port = 0;
        ls >> port;
        want(port >= 1 && port <= 0xffff);
        plan.workload.event_port_base = static_cast<std::uint16_t>(port);
      } else if (kind == "scenario") {
        // `scenario <name>,<scale>,<events>,<seed>[,<days>]` — one
        // comma-joined token. Every field is validated here with a typed
        // error: an unknown name or an out-of-range envelope parameter must
        // fail the parse, not render a silently different workload.
        plan.workload.kind = workload_kind::scenario;
        std::string spec;
        ls >> spec;
        want(!spec.empty());
        std::vector<std::string> fields;
        std::size_t pos = 0;
        for (;;) {
          const std::size_t comma = spec.find(',', pos);
          fields.push_back(spec.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        if (fields.size() < 4 || fields.size() > 5) {
          fail("scenario spec needs name,scale,events,seed[,days], got " +
               std::to_string(fields.size()) + " field(s)");
        }
        const auto parse_u64 = [&](const std::string& field,
                                   const char* what) {
          std::uint64_t v = 0;
          std::istringstream fs{field};
          fs >> v;
          if (fs.fail() || !fs.eof() || field.empty() || field[0] == '-') {
            fail("scenario " + std::string{what} + " is not a number: '" +
                 field + "'");
          }
          return v;
        };
        plan.workload.model = fields[0];
        if (!workload::is_known_scenario(plan.workload.model)) {
          fail("unknown scenario '" + plan.workload.model +
               "' (expected flash_crowd|diurnal|botnet_surge|relay_churn|"
               "country_block)");
        }
        {
          double scale = 0.0;
          std::istringstream fs{fields[1]};
          fs >> scale;
          if (fs.fail() || !fs.eof()) {
            fail("scenario scale is not a number: '" + fields[1] + "'");
          }
          // Bounded so hostile plan text cannot demand a client population
          // (256 * scale) beyond what generation can materialize.
          if (!(scale > 0.0) || scale > 1'000.0) {
            fail("scenario scale must be in (0, 1000]");
          }
          plan.workload.scale = scale;
        }
        plan.workload.events = parse_u64(fields[2], "events");
        if (plan.workload.events < 1 ||
            plan.workload.events > 100'000'000) {
          fail("scenario events/day must be in [1, 100000000]");
        }
        plan.workload.gen_seed = parse_u64(fields[3], "seed");
        if (fields.size() == 5) {
          const std::uint64_t days = parse_u64(fields[4], "days");
          if (days < 1 || days > 366) {
            fail("scenario days must be in [1, 366]");
          }
          plan.workload.gen_days = days;
        }
      } else if (kind == "relays") {
        // `relays <count>,<model>,<scale>,<events>,<seed>[,<days>]` — one
        // comma-joined token: the generate workload routed through a
        // simulated relay fleet (src/relay/).
        plan.workload.kind = workload_kind::relays;
        std::string spec;
        ls >> spec;
        want(!spec.empty());
        std::vector<std::string> fields;
        std::size_t pos = 0;
        for (;;) {
          const std::size_t comma = spec.find(',', pos);
          fields.push_back(spec.substr(pos, comma == std::string::npos
                                                ? std::string::npos
                                                : comma - pos));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        if (fields.size() < 5 || fields.size() > 6) {
          fail("relays spec needs count,model,scale,events,seed[,days], got " +
               std::to_string(fields.size()) + " field(s)");
        }
        const auto parse_u64 = [&](const std::string& field,
                                   const char* what) {
          std::uint64_t v = 0;
          std::istringstream fs{field};
          fs >> v;
          if (fs.fail() || !fs.eof() || field.empty() || field[0] == '-') {
            fail("relays " + std::string{what} + " is not a number: '" +
                 field + "'");
          }
          return v;
        };
        plan.workload.relay_count = parse_u64(fields[0], "count");
        if (plan.workload.relay_count < 1 ||
            plan.workload.relay_count > 100'000) {
          fail("relays count must be in [1, 100000]");
        }
        plan.workload.model = fields[1];
        if (!workload::is_known_trace_model(plan.workload.model)) {
          fail("unknown trace model '" + plan.workload.model + "'");
        }
        {
          double scale = 0.0;
          std::istringstream fs{fields[2]};
          fs >> scale;
          if (fs.fail() || !fs.eof()) {
            fail("relays scale is not a number: '" + fields[2] + "'");
          }
          if (!(scale > 0.0) || scale > 1'000.0) {
            fail("relays scale must be in (0, 1000]");
          }
          plan.workload.scale = scale;
        }
        plan.workload.events = parse_u64(fields[3], "events");
        if (plan.workload.events < 1 ||
            plan.workload.events > 100'000'000) {
          fail("relays events must be in [1, 100000000]");
        }
        plan.workload.gen_seed = parse_u64(fields[4], "seed");
        if (fields.size() == 6) {
          const std::uint64_t days = parse_u64(fields[5], "days");
          if (days < 1 || days > 366) {
            fail("relays days must be in [1, 366]");
          }
          plan.workload.gen_days = days;
        }
      } else {
        fail("unknown workload kind '" + kind +
             "' (expected synthetic|trace|generate|socket|scenario|relays)");
      }
    } else if (key == "schedule") {
      // `schedule rounds <N> duration <s> gap <s>` — keyword-tagged so a
      // hand-edited line with swapped fields reads as an error, not as a
      // silently different schedule.
      std::string k_rounds, k_duration, k_gap;
      ls >> k_rounds >> plan.schedule_rounds >> k_duration >>
          plan.round_duration_s >> k_gap >> plan.round_gap_s;
      want(k_rounds == "rounds" && k_duration == "duration" && k_gap == "gap");
      if (plan.schedule_rounds < 1) fail("schedule needs at least one round");
      // Bounded so hostile/fuzzed plan text cannot make schedule
      // materialization hang or overflow sim-time arithmetic: <= 1000
      // rounds (~3 years of daily epochs) of at most a year each.
      constexpr std::uint32_t k_max_rounds = 1'000;
      constexpr std::int64_t k_max_window_s = 366 * k_seconds_per_day;
      if (plan.schedule_rounds > k_max_rounds) {
        fail("schedule rounds must be <= 1000");
      }
      if (plan.round_duration_s <= 0 || plan.round_duration_s > k_max_window_s) {
        fail("round duration must be in (0, 366 days]");
      }
      if (plan.round_gap_s < 0 || plan.round_gap_s > k_max_window_s) {
        fail("round gap must be in [0, 366 days]");
      }
    } else if (key == "dc_grace_ms") {
      ls >> plan.dc_grace_ms;
      // Bounded so downstream deadline arithmetic (2x grace, grace + slack)
      // stays far from int overflow; an hour dwarfs any sane straggler wait.
      want(plan.dc_grace_ms > 0 && plan.dc_grace_ms <= 3'600'000);
    } else if (key == "durable_dir") {
      // Rest of the line: directories may contain spaces, like tally.
      std::getline(ls >> std::ws, plan.durable_dir);
      want(!plan.durable_dir.empty());
    } else if (key == "checkpoint_every") {
      ls >> plan.checkpoint_every;
      want(plan.checkpoint_every >= 1 && plan.checkpoint_every <= 100'000);
    } else if (key == "dc_shards") {
      ls >> plan.dc_shards;
      want(plan.dc_shards >= 1 && plan.dc_shards <= 4096);
    } else if (key == "dc_ingest_threads") {
      ls >> plan.dc_ingest_threads;
      want(plan.dc_ingest_threads <= 256);
    } else if (key == "sample_prob") {
      ls >> plan.sample_prob;
      want(plan.sample_prob > 0.0 && plan.sample_prob <= 1.0);
    } else if (key == "max_restarts") {
      ls >> plan.max_restarts;
      want(plan.max_restarts >= 0 && plan.max_restarts <= 1'000);
    } else if (key == "pace") {
      ls >> plan.pace;
      want(plan.pace >= 0.0);
    } else if (key == "psc_extractor") {
      ls >> plan.psc_extractor;
      const auto& known = core::extractor_names();
      want(std::find(known.begin(), known.end(), plan.psc_extractor) !=
           known.end());
    } else if (key == "instrument") {
      std::string name;
      ls >> name;
      const auto& known = core::instrument_names();
      want(std::find(known.begin(), known.end(), name) != known.end());
      plan.instruments.push_back(std::move(name));
    } else if (key == "items_per_dc") {
      ls >> plan.items_per_dc;
      want(true);
    } else if (key == "shared_items") {
      ls >> plan.shared_items;
      want(true);
    } else if (key == "bins") {
      ls >> plan.round.bins;
      want(plan.round.bins >= 2);
    } else if (key == "sensitivity") {
      ls >> plan.round.sensitivity;
      want(true);
    } else if (key == "epsilon") {
      ls >> plan.privacy.epsilon;
      want(true);
    } else if (key == "delta") {
      ls >> plan.privacy.delta;
      want(true);
    } else if (key == "psc_epsilon") {
      ls >> plan.round.privacy.epsilon;
      want(true);
    } else if (key == "psc_delta") {
      ls >> plan.round.privacy.delta;
      want(true);
    } else if (key == "group") {
      std::string name;
      ls >> name;
      want(!name.empty());
      plan.round.group = parse_backend(name);
    } else if (key == "noise_constant") {
      ls >> plan.round.noise_constant;
      want(true);
    } else if (key == "psc_noise" || key == "privcount_noise") {
      std::string v;
      ls >> v;
      want(v == "on" || v == "off");
      (key == "psc_noise" ? plan.round.noise_enabled
                          : plan.privcount_noise_enabled) = v == "on";
    } else if (key == "counter") {
      privcount::counter_spec c;
      ls >> c.name >> c.sensitivity >> c.expected_value;
      want(!c.name.empty());
      plan.counters.push_back(std::move(c));
    } else if (key == "node") {
      node_spec n;
      std::string role;
      unsigned port = 0;
      ls >> n.id >> role >> n.host >> port;
      want(!role.empty() && !n.host.empty() && port <= 0xffff);
      n.role = parse_role(role);
      n.port = static_cast<std::uint16_t>(port);
      plan.nodes.push_back(std::move(n));
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (!saw_magic) throw precondition_error{"plan: missing header"};
  expects(!plan.nodes.empty(), "plan has no nodes");
  // Hand-written configs are the point of the text format — turn the
  // easiest mistakes into parse errors instead of 15-second "destination
  // unreachable" transport failures (or silent empty rounds) at run time.
  std::set<net::node_id> ids;
  std::size_t ts_count = 0;
  std::size_t dc_count = 0;
  for (const auto& n : plan.nodes) {
    if (n.port == 0) {
      throw precondition_error{"plan: node " + std::to_string(n.id) +
                               " has port 0 (every node needs a listen port)"};
    }
    if (!ids.insert(n.id).second) {
      throw precondition_error{"plan: duplicate node id " + std::to_string(n.id)};
    }
    if (n.role == node_role::psc_ts || n.role == node_role::privcount_ts) {
      ++ts_count;
    }
    if (n.role == node_role::psc_dc || n.role == node_role::privcount_dc) {
      ++dc_count;
    }
  }
  if (ts_count != 1) {
    throw precondition_error{
        "plan: needs exactly one tally-server node, has " +
        std::to_string(ts_count)};
  }
  if (plan.protocol == "privcount" && plan.counters.empty()) {
    throw precondition_error{
        "plan: a privcount round needs at least one counter line"};
  }
  if (plan.protocol == "privcount" &&
      plan.workload.kind != workload_kind::synthetic &&
      plan.instruments.empty()) {
    throw precondition_error{
        "plan: an event workload needs at least one instrument line "
        "(privcount DCs would count nothing)"};
  }
  if (plan.workload.kind == workload_kind::socket &&
      plan.workload.event_port_base + dc_count > 0x10000u) {
    throw precondition_error{
        "plan: socket workload port range exceeds 65535"};
  }
  if (plan.workload.kind == workload_kind::relays) {
    // The fleet splits evenly over the DC nodes; a ragged split would make
    // relay assignment depend on DC order, which the reference path does
    // not model.
    if (dc_count == 0 || plan.workload.relay_count < dc_count ||
        plan.workload.relay_count % dc_count != 0) {
      throw precondition_error{
          "plan: relays count (" + std::to_string(plan.workload.relay_count) +
          ") must be a positive multiple of the DC count (" +
          std::to_string(dc_count) + ")"};
    }
  }
  // The declared schedule must be admissible under the §3.1 scheduling
  // discipline; building it validates window overlap rules.
  (void)round_schedule_of(plan);
  return plan;
}

deployment_plan load_plan(const std::string& path) {
  std::ifstream in{path};
  expects(in.good(), "cannot open plan file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_plan(buf.str());
}

void save_plan(const deployment_plan& plan, const std::string& path) {
  std::ofstream out{path, std::ios::trunc};
  expects(out.good(), "cannot write plan file");
  out << serialize_plan(plan);
  expects(out.good(), "short write on plan file");
}

std::vector<std::string> items_for_dc(const deployment_plan& plan,
                                      net::node_id id) {
  std::vector<std::string> items;
  items.reserve(plan.items_per_dc + plan.shared_items);
  for (std::uint64_t j = 0; j < plan.items_per_dc; ++j) {
    items.push_back("dc" + std::to_string(id) + "-item-" + std::to_string(j));
  }
  for (std::uint64_t j = 0; j < plan.shared_items; ++j) {
    items.push_back("shared-item-" + std::to_string(j));
  }
  return items;
}

core::measurement_schedule round_schedule_of(const deployment_plan& plan) {
  // All rounds of one deployment measure the same statistic family, so the
  // §3.1 rule "repeats of one statistic may be adjacent" admits any gap.
  std::string statistic = plan.protocol;
  if (plan.protocol == "psc") {
    statistic += "/" + plan.psc_extractor;
  } else {
    for (const auto& name : plan.instruments) statistic += "/" + name;
  }
  return core::make_uniform_schedule(std::move(statistic), plan.schedule_rounds,
                                     plan.round_duration_s, plan.round_gap_s);
}

round_window round_window_for(const deployment_plan& plan,
                              const core::measurement_schedule& schedule,
                              std::size_t round_index) {
  if (plan.schedule_rounds <= 1) {
    return {sim_time{std::numeric_limits<std::int64_t>::min()},
            sim_time{std::numeric_limits<std::int64_t>::max()}};
  }
  expects(round_index < schedule.rounds().size(),
          "protocol round id outside the declared schedule");
  const core::planned_round& r = schedule.rounds()[round_index];
  return {r.start, r.end()};
}

std::size_t dc_index_of(const deployment_plan& plan, net::node_id id) {
  std::size_t index = 0;
  for (const auto& n : plan.nodes) {
    if (n.role != node_role::psc_dc && n.role != node_role::privcount_dc) {
      continue;
    }
    if (n.id == id) return index;
    ++index;
  }
  throw precondition_error{"node " + std::to_string(id) +
                           " is not a DC node of the plan"};
}

deployment_plan make_psc_plan(std::size_t dcs, std::size_t cps,
                              std::uint64_t bins) {
  expects(dcs >= 1 && cps >= 1, "PSC needs at least one DC and one CP");
  deployment_plan plan;
  plan.protocol = "psc";
  plan.round.bins = bins;
  net::node_id next = 0;
  plan.nodes.push_back({next++, node_role::psc_ts, "127.0.0.1", 0});
  for (std::size_t i = 0; i < cps; ++i) {
    plan.nodes.push_back({next++, node_role::psc_cp, "127.0.0.1", 0});
  }
  for (std::size_t i = 0; i < dcs; ++i) {
    plan.nodes.push_back({next++, node_role::psc_dc, "127.0.0.1", 0});
  }
  return plan;
}

deployment_plan make_privcount_plan(
    std::size_t dcs, std::size_t sks,
    std::vector<privcount::counter_spec> counters) {
  expects(dcs >= 1 && sks >= 1, "PrivCount needs at least one DC and one SK");
  expects(!counters.empty(), "PrivCount round needs counters");
  deployment_plan plan;
  plan.protocol = "privcount";
  plan.counters = std::move(counters);
  net::node_id next = 0;
  plan.nodes.push_back({next++, node_role::privcount_ts, "127.0.0.1", 0});
  for (std::size_t i = 0; i < sks; ++i) {
    plan.nodes.push_back({next++, node_role::privcount_sk, "127.0.0.1", 0});
  }
  for (std::size_t i = 0; i < dcs; ++i) {
    plan.nodes.push_back({next++, node_role::privcount_dc, "127.0.0.1", 0});
  }
  return plan;
}

}  // namespace tormet::cli
