// Single-role node entry points for distributed deployments. A
// tormet_node process calls run_node() with a deployment plan and its own
// node id; the function builds the distributed TCP fabric, instantiates
// exactly one protocol role (PSC TS/CP/DC or PrivCount TS/SK/DC) with a
// per-node RNG derived from (plan seed, node id), drives the plan's whole
// round *schedule* with explicit run_until(predicate) phases, and
// participates in the deterministic completion handshake:
//
//   TS: round 1 ... round N (same process; the tally file is rewritten
//       after every round) -> ROUND_DONE to every peer
//       -> waits for every surviving peer's ROUND_ACK -> exits
//   peer: serves protocol messages across all rounds until ROUND_DONE
//       -> ROUND_ACK to the TS -> flushes sends -> exits
//
// Completion is therefore explicit per node — no idle-timeout quiescence
// heuristic anywhere in the distributed path.
//
// Live multi-round pipeline (plan.schedule_rounds > 1): processes stay up
// across every round. Each DC opens its event source once (trace file or
// listening socket — see cli::workload_cursor) and partitions the ingested
// stream into rounds by sim-time window; events in inter-round gaps are
// counted-but-dropped. With plan.dc_grace_ms > 0 the TS tolerates faults:
// a DC that misses a phase by more than the grace is dropped from the
// deployment (later rounds exclude it; its ROUND_ACK is not awaited), and
// TS sends to unreachable peers are logged instead of fatal.
//
// Durable rounds (plan.durable_dir non-empty): every role opens a
// write-ahead op-log + checkpoint store under durable_dir/node-<id>
// (util::durable_store). The TS persists one record per committed round
// (tally bytes + per-DC participation deltas + the dropped set); a
// restarted TS replays the log and resumes the schedule at the first
// uncommitted round. Non-TS roles persist only their schedule position —
// all other per-round state is re-derived byte-identically from
// (plan seed, node id, round id) because every node reseeds its RNG per
// round (crypto::make_node_round_rng), exactly as the in-process
// reference deployments do. A failed round attempt (peer crash) is
// retried up to a small bound: the TS re-begins the same round id and the
// per-round determinism makes the retry's bytes identical to the
// interrupted attempt's, so recovery never perturbs the tally.
//
// Rejoin handshake: a restarted node announces itself with REJOIN_REQUEST;
// the TS queries dropped peers with REJOIN_QUERY at round boundaries and
// re-admits responders (readmit_dc) before the next begin_round.
//
// Fault injection for tests: TORMET_FAULT="<node_id> exit_after_round <k>"
// makes that DC process exit cleanly after round k's report,
// "<node_id> delay_round <k> <ms>" stalls its collection phase in round k,
// "<node_id> crash_in_round <k>" / "<node_id> crash_after_round <k>"
// _Exit(42) mid-round / right after round k (0-based; "action:k" spelling
// also accepted). Clauses are ';'-separated and repeatable: several
// crash_in_round/crash_after_round clauses for one node accumulate into a
// round set, so multi-crash schedules inject every listed round. In a
// durable deployment each crash fires once per (node, action, round) — a
// marker file under durable_dir survives the restart — and the
// orchestrator's supervisor restarts exit-42 children up to the plan's
// max_restarts budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"
#include "src/privcount/counter.h"

namespace tormet::cli {

/// Round-completion control messages (outside the protocol msg_type
/// ranges: PSC uses 32..39, PrivCount 1..8).
enum class ctl_msg : std::uint16_t {
  round_done = 240,      // TS -> peer: round is over, acknowledge and exit
  round_ack = 241,       // peer -> TS: acknowledged; TS exits after all acks
  rejoin_request = 242,  // restarted peer -> TS: re-admit me at a boundary
  rejoin_ack = 243,      // TS -> peer: rejoin request noted
  rejoin_query = 244,    // TS -> dropped peer: still there? answer to rejoin
  dc_stats = 245,        // DC -> TS: privacy-safe accounting lines for the
                         // .summary sidecar (sent before the final ack)
};

struct node_result {
  /// Serialized tally — non-empty only for tally-server roles (also
  /// written to the plan's tally_path).
  std::string tally;
};

/// Runs one node's role in a distributed round to completion. Throws
/// transport_error / precondition_error on protocol or fabric failures
/// (the tormet_node binary maps that to a non-zero exit).
[[nodiscard]] node_result run_node(const deployment_plan& plan,
                                   net::node_id self);

/// Canonical tally serializations, byte-compared between the distributed
/// and the in-process reference round.
[[nodiscard]] std::string serialize_psc_tally(std::uint64_t raw_count,
                                              std::uint64_t bins,
                                              std::uint64_t total_noise_bits);
[[nodiscard]] std::string serialize_privcount_tally(
    const std::vector<privcount::counter_result>& results);

/// Multi-round tally: the per-round serializations concatenated under one
/// header. A single round stays in the plain per-round format (returned
/// unwrapped), so classic single-round deployments keep their tally bytes.
[[nodiscard]] std::string serialize_multiround_tally(
    const std::vector<std::string>& round_tallies);

/// Writes `content` to `path` atomically (temp file + rename), so a
/// watcher never observes a half-written tally.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace tormet::cli
