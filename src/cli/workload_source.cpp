#include "src/cli/workload_source.h"

#include "src/core/instruments.h"
#include "src/tor/trace_file.h"
#include "src/tor/trace_socket.h"
#include "src/util/check.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {

namespace {

[[nodiscard]] workload::trace_gen_params gen_params_of(
    const deployment_plan& plan) {
  workload::trace_gen_params p;
  p.model = plan.workload.model;
  p.dcs = plan.ids_with(plan.protocol == "psc" ? node_role::psc_dc
                                               : node_role::privcount_dc)
              .size();
  p.scale = plan.workload.scale;
  p.events = plan.workload.events;
  p.seed = plan.workload.gen_seed;
  return p;
}

}  // namespace

bool is_event_workload(const deployment_plan& plan) {
  return plan.workload.kind != workload_kind::synthetic;
}

std::size_t stream_dc_workload(
    const deployment_plan& plan, std::size_t dc_index,
    const std::function<void(const tor::event&)>& sink) {
  switch (plan.workload.kind) {
    case workload_kind::synthetic:
      throw precondition_error{
          "synthetic workloads insert items, they do not stream events"};

    case workload_kind::trace: {
      tor::trace_reader reader{plan.workload.trace_dir + "/" +
                               tor::trace_file_name(dc_index)};
      return tor::replay_events(reader, sink,
                                tor::replay_options{.pace = plan.pace});
    }

    case workload_kind::generate: {
      // Every process materializes the same generation (pure function of
      // the plan) and replays only its own slice. Trades CPU for having no
      // shared filesystem requirement.
      const std::vector<std::vector<tor::event>> per_dc =
          workload::generate_trace_events(gen_params_of(plan));
      expects(dc_index < per_dc.size(), "DC index out of generated range");
      std::size_t delivered = 0;
      for (const tor::event& ev : per_dc[dc_index]) {
        sink(ev);
        ++delivered;
      }
      return delivered;
    }

    case workload_kind::socket: {
      // The feeder wait and per-recv stalls are bounded by the round
      // deadline, so a missing feeder fails the node (and the round)
      // instead of hanging every process past serve_until_done's deadline.
      tor::event_socket_source source{
          static_cast<std::uint16_t>(plan.workload.event_port_base + dc_index),
          plan.round_deadline_ms};
      std::size_t delivered = 0;
      while (const std::optional<tor::event> ev = source.next()) {
        sink(*ev);
        ++delivered;
      }
      return delivered;
    }
  }
  throw invariant_error{"unhandled workload kind"};
}

std::size_t stream_all_dc_workloads(
    const deployment_plan& plan,
    const std::function<void(std::size_t, const tor::event&)>& sink) {
  std::size_t delivered = 0;
  if (plan.workload.kind == workload_kind::generate) {
    const std::vector<std::vector<tor::event>> per_dc =
        workload::generate_trace_events(gen_params_of(plan));
    for (std::size_t k = 0; k < per_dc.size(); ++k) {
      for (const tor::event& ev : per_dc[k]) {
        sink(k, ev);
        ++delivered;
      }
    }
    return delivered;
  }
  const std::size_t dcs =
      plan.ids_with(plan.protocol == "psc" ? node_role::psc_dc
                                           : node_role::privcount_dc)
          .size();
  for (std::size_t k = 0; k < dcs; ++k) {
    delivered += stream_dc_workload(
        plan, k, [&sink, k](const tor::event& ev) { sink(k, ev); });
  }
  return delivered;
}

void configure_psc_dc(const deployment_plan& plan, psc::data_collector& dc) {
  dc.set_extractor(core::extractor_by_name(plan.psc_extractor));
}

void configure_privcount_dc(const deployment_plan& plan,
                            privcount::data_collector& dc) {
  expects(!plan.instruments.empty(),
          "event workload needs at least one instrument");
  for (const auto& name : plan.instruments) {
    dc.add_instrument(core::instrument_by_name(name));
  }
}

trace_round_defaults defaults_for_model(const std::string& model) {
  trace_round_defaults d;
  const auto add = [&d](const std::string& instrument) {
    d.instruments.push_back(instrument);
    for (auto& spec : core::default_specs_for(instrument)) {
      d.counters.push_back(std::move(spec));
    }
  };
  if (model == "zipf" || model == "browsing") {
    add("stream_taxonomy");
    d.psc_extractor = "primary_sld";
  } else if (model == "population") {
    add("entry_totals");
    d.psc_extractor = "client_ip";
  } else if (model == "onion") {
    add("rendezvous");
    d.psc_extractor = "published_address";
  } else if (model == "mixed") {
    add("stream_taxonomy");
    add("entry_totals");
    add("rendezvous");
    d.psc_extractor = "client_ip";
  } else {
    throw precondition_error{"unknown trace model: " + model};
  }
  return d;
}

}  // namespace tormet::cli
