#include "src/cli/workload_source.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "src/core/instruments.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {

namespace {

constexpr sim_time k_stream_begin{std::numeric_limits<std::int64_t>::min()};
constexpr sim_time k_stream_end{std::numeric_limits<std::int64_t>::max()};

}  // namespace

workload::trace_gen_params trace_gen_params_of(const deployment_plan& plan) {
  workload::trace_gen_params p;
  p.model = plan.workload.model;
  p.dcs = plan.ids_with(plan.protocol == "psc" ? node_role::psc_dc
                                               : node_role::privcount_dc)
              .size();
  p.scale = plan.workload.scale;
  p.events = plan.workload.events;
  p.seed = plan.workload.gen_seed;
  p.days = plan.workload.gen_days;
  return p;
}

workload::scenario_params scenario_params_of(const deployment_plan& plan) {
  workload::scenario_params p;
  p.name = plan.workload.model;
  p.dcs = plan.ids_with(plan.protocol == "psc" ? node_role::psc_dc
                                               : node_role::privcount_dc)
              .size();
  p.scale = plan.workload.scale;
  p.events = plan.workload.events;
  p.seed = plan.workload.gen_seed;
  p.days = plan.workload.gen_days;
  return p;
}

std::shared_ptr<const std::vector<std::vector<tor::event>>>
materialize_plan_events(const deployment_plan& plan) {
  switch (plan.workload.kind) {
    case workload_kind::generate:
    case workload_kind::relays:
      // relays shares generate's event table: the fleet detour changes HOW
      // a DC ingests its slice, never WHAT the slice contains.
      return std::make_shared<const std::vector<std::vector<tor::event>>>(
          workload::generate_trace_events(trace_gen_params_of(plan)));
    case workload_kind::scenario:
      return std::make_shared<const std::vector<std::vector<tor::event>>>(
          workload::generate_scenario_events(scenario_params_of(plan)));
    case workload_kind::synthetic:
    case workload_kind::trace:
    case workload_kind::socket:
      return nullptr;
  }
  throw invariant_error{"unhandled workload kind"};
}

bool is_event_workload(const deployment_plan& plan) {
  return plan.workload.kind != workload_kind::synthetic;
}

std::vector<std::size_t> scheduled_dark_dcs(const deployment_plan& plan,
                                            std::size_t round_index) {
  if (plan.workload.kind != workload_kind::scenario) return {};
  if (plan.schedule_rounds <= 1) return {};  // unbounded window, never covered
  const core::measurement_schedule sched = round_schedule_of(plan);
  const round_window win = round_window_for(plan, sched, round_index);
  const workload::scenario_shape shape =
      workload::shape_of(scenario_params_of(plan));
  std::vector<std::size_t> dark;
  for (const auto& w : shape.dropouts) {
    if (w.start <= win.start.seconds && w.end >= win.end.seconds &&
        std::find(dark.begin(), dark.end(), w.dc) == dark.end()) {
      dark.push_back(w.dc);
    }
  }
  std::sort(dark.begin(), dark.end());
  return dark;
}

workload_cursor::workload_cursor(const deployment_plan& plan,
                                 std::size_t dc_index)
    : workload_cursor{plan, dc_index, nullptr} {}

workload_cursor::workload_cursor(
    const deployment_plan& plan, std::size_t dc_index,
    std::shared_ptr<const std::vector<std::vector<tor::event>>> generated)
    : kind_{plan.workload.kind}, pace_{plan.pace}, dc_index_{dc_index} {
  switch (kind_) {
    case workload_kind::synthetic:
      throw precondition_error{
          "synthetic workloads insert items, they do not stream events"};
    case workload_kind::trace:
      reader_ = std::make_unique<tor::trace_reader>(
          plan.workload.trace_dir + "/" + tor::trace_file_name(dc_index));
      return;
    case workload_kind::generate:
    case workload_kind::scenario:
    case workload_kind::relays:
      // Every process materializes the same generation (pure function of
      // the plan) unless the caller shares one; either way the cursor only
      // walks its own slice.
      generated_ = generated != nullptr ? std::move(generated)
                                        : materialize_plan_events(plan);
      expects(dc_index_ < generated_->size(), "DC index out of generated range");
      return;
    case workload_kind::socket:
      // Bind/listen now, so a feeder's connect retry can land before the
      // first round opens; the feeder wait and per-recv stalls are bounded
      // by the round deadline.
      socket_ = std::make_unique<tor::event_socket_source>(
          static_cast<std::uint16_t>(plan.workload.event_port_base + dc_index),
          plan.round_deadline_ms);
      return;
  }
  throw invariant_error{"unhandled workload kind"};
}

std::optional<tor::event> workload_cursor::fetch() {
  if (failed_ || eof_) return std::nullopt;
  try {
    switch (kind_) {
      case workload_kind::trace: {
        std::optional<tor::event> ev = reader_->next();
        if (!ev.has_value()) eof_ = true;
        return ev;
      }
      case workload_kind::generate:
      case workload_kind::scenario:
      case workload_kind::relays: {
        const std::vector<tor::event>& slice = (*generated_)[dc_index_];
        if (next_generated_ >= slice.size()) {
          eof_ = true;
          return std::nullopt;
        }
        return slice[next_generated_++];
      }
      case workload_kind::socket: {
        std::optional<tor::event> ev = socket_->next();
        if (!ev.has_value()) eof_ = true;
        return ev;
      }
      case workload_kind::synthetic:
        break;
    }
  } catch (const net::wire_error& e) {
    if (kind_ == workload_kind::socket) {
      // A live feeder died mid-stream (abrupt close, truncated record, or a
      // stall past the deadline). The pipeline keeps running on whatever
      // this DC already observed; a trace *file* in the same state is
      // corrupt input and still throws below.
      failed_ = true;
      log_line{log_level::warn}
          << "DC " << dc_index_ << " event stream failed mid-round ("
          << e.what() << "); continuing without it";
      return std::nullopt;
    }
    throw;
  }
  throw invariant_error{"unhandled workload kind"};
}

void workload_cursor::pace_to(sim_time t) {
  if (pace_ <= 0.0) return;
  if (last_paced_seconds_.has_value() && t.seconds > *last_paced_seconds_) {
    const double gap = static_cast<double>(t.seconds - *last_paced_seconds_);
    std::this_thread::sleep_for(std::chrono::duration<double>(gap * pace_));
  }
  last_paced_seconds_ = t.seconds;
}

std::size_t workload_cursor::stream_window_paced(sim_time start, sim_time end,
                                                 const batch_sink& sink) {
  std::size_t delivered = 0;
  for (;;) {
    std::optional<tor::event> ev;
    if (pending_.has_value()) {
      ev = std::move(pending_);
      pending_.reset();
    } else {
      ev = fetch();
    }
    if (!ev.has_value()) break;  // end of stream (or failed live stream)
    if (ev->at >= end) {
      pending_ = std::move(ev);  // first event of a later window: hold it
      break;
    }
    pace_to(ev->at);
    if (ev->at < start) {
      ++dropped_;  // inter-round gap: collection stays on, counting only
      continue;
    }
    sink(&*ev, 1);
    ++delivered;
  }
  return delivered;
}

std::size_t workload_cursor::stream_window(sim_time start, sim_time end,
                                           const batch_sink& sink) {
  if (pace_ > 0.0) return stream_window_paced(start, end, sink);
  std::size_t delivered = 0;
  // Lookahead a previous (scalar or batched) window held back.
  if (pending_.has_value()) {
    if (pending_->at >= end) return 0;
    const tor::event ev = *std::move(pending_);
    pending_.reset();
    if (ev.at < start) {
      ++dropped_;
    } else {
      sink(&ev, 1);
      ++delivered;
    }
  }
  if ((kind_ == workload_kind::generate || kind_ == workload_kind::scenario ||
       kind_ == workload_kind::relays) &&
      !failed_ && !eof_) {
    // Fast path: generated slices are stably time-sorted (workload::
    // trace_gen), so the inter-round gap is a prefix, the window end is a
    // lower_bound, and the whole window is handed to the sink as one
    // zero-copy span — no per-event work at all on the cursor side.
    const std::vector<tor::event>& slice = (*generated_)[dc_index_];
    std::size_t i = next_generated_;
    const std::size_t n = slice.size();
    while (i < n && slice[i].at < start) {
      ++dropped_;  // inter-round gap: collection stays on, counting only
      ++i;
    }
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(slice.begin() + static_cast<std::ptrdiff_t>(i),
                         slice.end(), end,
                         [](const tor::event& e, sim_time t) {
                           return e.at < t;
                         }) -
        slice.begin());
    if (hi > i) {
      sink(slice.data() + i, hi - i);
      delivered += hi - i;
    }
    // An event at or past `end` stays unconsumed in the slice — it IS the
    // lookahead, no pending_ copy needed.
    next_generated_ = hi;
    if (hi >= n) eof_ = true;
    return delivered;
  }
  // Block path: fetch into a reused buffer and flush span-wise.
  constexpr std::size_t k_block_events = 8192;
  block_.reserve(k_block_events);
  for (;;) {
    block_.clear();
    bool more = false;
    while (block_.size() < k_block_events) {
      std::optional<tor::event> ev = fetch();
      if (!ev.has_value()) break;  // end of stream (or failed live stream)
      if (ev->at >= end) {
        pending_ = std::move(ev);  // first event of a later window: hold it
        break;
      }
      if (ev->at < start) {
        ++dropped_;
        continue;
      }
      block_.push_back(*std::move(ev));
      more = block_.size() == k_block_events;
    }
    if (!block_.empty()) {
      sink(block_.data(), block_.size());
      delivered += block_.size();
    }
    if (!more) return delivered;
  }
}

std::size_t workload_cursor::drain() {
  std::size_t consumed = 0;
  if (pending_.has_value()) {
    pending_.reset();
    ++consumed;
  }
  while (fetch().has_value()) ++consumed;
  dropped_ += consumed;
  return consumed;
}

std::size_t stream_dc_workload(const deployment_plan& plan,
                               std::size_t dc_index, const batch_sink& sink) {
  workload_cursor cursor{plan, dc_index};
  return cursor.stream_window(k_stream_begin, k_stream_end, sink);
}

std::shared_ptr<util::thread_pool> make_ingest_pool(
    const deployment_plan& plan) {
  if (plan.dc_ingest_threads == 0) return nullptr;
  return std::make_shared<util::thread_pool>(plan.dc_ingest_threads);
}

void configure_dc_ingest(const deployment_plan& plan, core::event_sink& dc,
                         std::shared_ptr<util::thread_pool> pool) {
  dc.set_shards(plan.dc_shards);
  if (pool != nullptr) dc.set_thread_pool(std::move(pool));
}

void configure_psc_dc(const deployment_plan& plan, psc::data_collector& dc,
                      std::shared_ptr<util::thread_pool> pool) {
  dc.set_extractor(core::extractor_by_name(plan.psc_extractor));
  configure_dc_ingest(plan, dc, std::move(pool));
}

void configure_privcount_dc(const deployment_plan& plan,
                            privcount::data_collector& dc,
                            std::shared_ptr<util::thread_pool> pool) {
  expects(!plan.instruments.empty(),
          "event workload needs at least one instrument");
  for (const auto& name : plan.instruments) {
    // Prefer the slot-compiled batch form when one exists; the closure
    // instrument is the fallback (identical increments either way).
    if (auto fast = core::make_batch_instrument(name)) {
      dc.add_instrument(std::move(fast));
    } else {
      dc.add_instrument(core::instrument_by_name(name));
    }
  }
  configure_dc_ingest(plan, dc, std::move(pool));
}

trace_round_defaults defaults_for_model(const std::string& model) {
  trace_round_defaults d;
  const auto add = [&d](const std::string& instrument) {
    d.instruments.push_back(instrument);
    for (auto& spec : core::default_specs_for(instrument)) {
      d.counters.push_back(std::move(spec));
    }
  };
  if (model == "zipf" || model == "browsing") {
    add("stream_taxonomy");
    d.psc_extractor = "primary_sld";
  } else if (model == "population") {
    add("entry_totals");
    d.psc_extractor = "client_ip";
  } else if (model == "onion") {
    add("rendezvous");
    add("hsdir_ahmia");
    d.psc_extractor = "published_address";
  } else if (model == "mixed") {
    add("stream_taxonomy");
    add("entry_totals");
    add("rendezvous");
    d.psc_extractor = "client_ip";
  } else {
    throw precondition_error{"unknown trace model: " + model};
  }
  return d;
}

trace_round_defaults defaults_for_scenario(const std::string& name) {
  const workload::scenario_measurements m =
      workload::measurements_for_scenario(name);
  trace_round_defaults d;
  d.psc_extractor = m.psc_extractor;
  for (const auto& instrument : m.instruments) {
    d.instruments.push_back(instrument);
    for (auto& spec : core::default_specs_for(instrument)) {
      d.counters.push_back(std::move(spec));
    }
  }
  return d;
}

}  // namespace tormet::cli
