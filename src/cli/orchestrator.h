// Round orchestration across real OS processes: assigns listen ports,
// writes the shared plan file, fork/execs one tormet_node per node, waits
// for the round with a deadline, and collects the tally the TS process
// wrote. Also runs the in-process reference round (inproc_net, same plan,
// same seeds) whose serialized tally must be byte-identical to the
// distributed one — the end-to-end check CI gates on.
#pragma once

#include <string>
#include <vector>

#include "src/cli/deployment_plan.h"

namespace tormet::cli {

struct node_exit {
  net::node_id id = 0;
  int exit_code = -1;  // -1: killed / did not exit cleanly
  int restarts = 0;    // supervisor respawns (durable deployments only)
};

struct distributed_round_result {
  std::string tally;  // bytes of the TS's tally file
  /// Privacy-safe deployment summary sidecar (tally_path + ".summary",
  /// empty when the TS wrote none): round/retry totals and per-DC
  /// participation counters — never measurement data.
  std::string summary;
  std::vector<node_exit> nodes;
};

/// Assigns a free loopback port to every node whose port is 0 (binds
/// ephemeral listeners, records the assigned ports, then releases them).
void assign_free_ports(deployment_plan& plan);

/// Runs the plan's round in-process over the deterministic inproc bus and
/// returns the serialized tally. Node ids, per-node RNG streams, and DC
/// item sets all follow the plan, exactly as the node processes do.
[[nodiscard]] std::string run_reference_round(const deployment_plan& plan);

/// Spawns one `node_binary --config <plan> --node <id>` process per plan
/// node inside `workdir` (plan + tally + per-node logs live there), waits
/// up to `timeout_ms`, and returns the tally plus per-node exit codes.
/// Throws transport_error on timeout or when any node fails. In a durable
/// plan the call also supervises: a child that dies with the crash exit
/// code (42) is respawned — appending to its log — up to the plan's
/// max_restarts budget (a deployment-tuning key, default 5);
/// TORMET_RESTART_DELAY_MS delays each respawn (test knob for exercising
/// the exclusion-then-rejoin path).
[[nodiscard]] distributed_round_result run_distributed_round(
    const deployment_plan& plan, const std::string& node_binary,
    const std::string& workdir, int timeout_ms);

/// Creates a fresh scratch directory for one round (under TMPDIR).
[[nodiscard]] std::string make_round_workdir();

/// Path of the tormet_node binary installed next to the calling executable
/// ("" when absent). The orchestrator binary and tests use this default;
/// tests can override via the TORMET_NODE_BIN environment variable.
[[nodiscard]] std::string sibling_node_binary();

}  // namespace tormet::cli
