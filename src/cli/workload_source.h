// Event-workload streaming for distributed rounds: resolves a plan's
// workload section into the per-DC event stream and pushes it through a
// data collector's observe() pipeline. Used symmetrically by
// cli::node_runner (each DC process streams its own slice) and
// cli::run_reference_round (the in-process round streams every slice), so
// both sides ingest byte-identical event sequences:
//
//   trace     — streams <trace_dir>/dc-<k>.trace with a bounded buffer
//   generate  — materializes workload::generate_trace_events (a pure
//               function of the plan) and replays slice k
//   socket    — listens on event_port_base + k and ingests a pushed trace
//               stream (file mode only in the reference round: what a
//               feeder pushed cannot be re-derived from the plan)
//
// Replay is time-ordered and optionally paced (plan.pace wall-clock
// seconds per sim second).
#pragma once

#include <functional>

#include "src/cli/deployment_plan.h"
#include "src/privcount/data_collector.h"
#include "src/psc/data_collector.h"
#include "src/tor/events.h"

namespace tormet::cli {

/// True when the plan's collection phase feeds tor::events (anything but
/// the synthetic item workload).
[[nodiscard]] bool is_event_workload(const deployment_plan& plan);

/// Streams DC `dc_index`'s event slice into `sink`, honoring plan.pace.
/// Returns the number of events delivered. Throws precondition_error for
/// synthetic plans and net::wire_error on corrupt trace input.
std::size_t stream_dc_workload(const deployment_plan& plan,
                               std::size_t dc_index,
                               const std::function<void(const tor::event&)>& sink);

/// Streams every DC's slice, in DC order, into `sink(dc_index, event)`.
/// Semantically a loop of stream_dc_workload over all DCs, but `generate`
/// workloads are materialized once instead of once per DC — the in-process
/// reference round uses this (a node process only ever needs its own
/// slice). Returns total events delivered.
std::size_t stream_all_dc_workloads(
    const deployment_plan& plan,
    const std::function<void(std::size_t, const tor::event&)>& sink);

/// Installs the plan's extractor (psc_extractor) on a PSC DC.
void configure_psc_dc(const deployment_plan& plan, psc::data_collector& dc);

/// Installs the plan's instruments on a PrivCount DC.
void configure_privcount_dc(const deployment_plan& plan,
                            privcount::data_collector& dc);

/// Measurement defaults for a trace model: the instruments that consume
/// its events, their counter specs, and the PSC extractor with signal on
/// the model's event mix. tormet_tracegen writes plans from these.
struct trace_round_defaults {
  std::vector<std::string> instruments;
  std::vector<privcount::counter_spec> counters;
  std::string psc_extractor;
};
[[nodiscard]] trace_round_defaults defaults_for_model(const std::string& model);

}  // namespace tormet::cli
