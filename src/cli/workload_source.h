// Event-workload streaming for distributed rounds: resolves a plan's
// workload section into the per-DC event stream and pushes it through a
// data collector's observe() pipeline. Used symmetrically by
// cli::node_runner (each DC process streams its own slice) and
// cli::run_reference_round (the in-process round streams every slice), so
// both sides ingest byte-identical event sequences:
//
//   trace     — streams <trace_dir>/dc-<k>.trace with a bounded buffer
//   generate  — materializes workload::generate_trace_events (a pure
//               function of the plan) and replays slice k
//   scenario  — materializes workload::generate_scenario_events (named
//               time-varying scenarios with ground-truth sidecars) and
//               replays slice k
//   relays    — materializes like generate; the DC routes the slice through
//               its simulated relay fleet (src/relay/relay_plane.h) before
//               ingesting, instead of feeding the sink directly
//   socket    — listens on event_port_base + k and ingests a pushed trace
//               stream (file mode only in the reference round: what a
//               feeder pushed cannot be re-derived from the plan)
//
// Replay is time-ordered and optionally paced (plan.pace wall-clock
// seconds per sim second).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "src/cli/deployment_plan.h"
#include "src/core/event_sink.h"
#include "src/privcount/data_collector.h"
#include "src/psc/data_collector.h"
#include "src/tor/events.h"
#include "src/tor/trace_file.h"
#include "src/tor/trace_socket.h"
#include "src/util/thread_pool.h"
#include "src/workload/scenario.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {

/// The trace-generation parameters a plan's `generate` workload resolves
/// to — the single plan→params mapping, shared by node processes and the
/// in-process reference round (a divergence between the two would surface
/// only as an unexplained byte-identity failure).
[[nodiscard]] workload::trace_gen_params trace_gen_params_of(
    const deployment_plan& plan);

/// The scenario parameters a plan's `scenario` workload resolves to — the
/// same single-mapping contract as trace_gen_params_of.
[[nodiscard]] workload::scenario_params scenario_params_of(
    const deployment_plan& plan);

/// Materializes a plan's in-memory workload (`generate` or `scenario`) as
/// the shared per-DC event table every cursor slices; nullptr for kinds
/// that stream from files or sockets. Pure function of the plan — node
/// processes and the reference round materialize identical streams.
[[nodiscard]] std::shared_ptr<const std::vector<std::vector<tor::event>>>
materialize_plan_events(const deployment_plan& plan);

/// True when the plan's collection phase feeds tor::events (anything but
/// the synthetic item workload).
[[nodiscard]] bool is_event_workload(const deployment_plan& plan);

/// DC indices whose scenario dropout windows cover the ENTIRE collection
/// window of round `round_index` (0-based): the DC is scheduled dark for
/// the whole round, so the TS excludes it at the round boundary and
/// re-admits it when its outage ends — the paper's churned-relay shape.
/// Empty for non-scenario workloads, for partial-round outages (the DC
/// still reports what it saw), and for single-round plans (their window is
/// unbounded, so no finite outage covers it). Pure function of the plan:
/// the TS and the reference round derive identical exclusion schedules.
[[nodiscard]] std::vector<std::size_t> scheduled_dark_dcs(
    const deployment_plan& plan, std::size_t round_index);

/// Contiguous-span sink for batched event delivery: `evs[0..n)` is valid
/// only for the duration of the call. The one event-delivery shape in the
/// repo — core::event_sink::ingest matches it directly.
using batch_sink = std::function<void(const tor::event* evs, std::size_t n)>;

/// Streams DC `dc_index`'s whole event slice into `sink` as contiguous
/// spans, honoring plan.pace. Returns the number of events delivered.
/// Throws precondition_error for synthetic plans and net::wire_error on
/// corrupt trace input.
std::size_t stream_dc_workload(const deployment_plan& plan,
                               std::size_t dc_index, const batch_sink& sink);

/// One DC's live event stream across a whole deployment lifetime. Unlike
/// stream_dc_workload (one EOF-terminated replay), a cursor opens its
/// source once — trace file, materialized generation, or listening event
/// socket — and stays open across every round of the plan's schedule,
/// handing out events window by window:
///
///   stream_window(start, end)  — delivers events with start <= t < end to
///       the sink as contiguous spans; events before `start` (the
///       inter-round gap) are counted-but-dropped, per the paper's
///       always-on collection; the first event at or past `end` is held
///       as lookahead for the next window.
///   drain()                    — consumes the rest of the stream, counting
///       everything as dropped (trailing gap / feeder shutdown).
///
/// Live-stream fault tolerance: a socket feeder that dies mid-stream
/// (abrupt close, truncated record, stall past the deadline) marks the
/// cursor failed and reads as end-of-stream — later rounds still complete
/// with whatever this DC observed. Corrupt *files* still throw: a trace
/// file is authoritative input, not a flaky peer.
class workload_cursor {
 public:
  /// Opens DC `dc_index`'s stream for `plan` (throws precondition_error for
  /// synthetic plans). Socket sources bind their listen port here, so a
  /// feeder's connect retry can land before the first round opens.
  workload_cursor(const deployment_plan& plan, std::size_t dc_index);
  /// Reference-round variant: share one materialized `generate` workload
  /// across every DC's cursor instead of generating once per DC.
  workload_cursor(
      const deployment_plan& plan, std::size_t dc_index,
      std::shared_ptr<const std::vector<std::vector<tor::event>>> generated);

  using batch_sink = cli::batch_sink;

  /// Streams events with sim time in [start, end) into `sink` as
  /// contiguous spans — the one window-delivery API (a generated slice is
  /// handed out zero-copy; file/socket sources are blocked through a
  /// reused buffer). Returns the number of events delivered. Paced replay
  /// degrades to one-event spans: pacing sleeps between events by
  /// definition, so wider spans would only add latency.
  std::size_t stream_window(sim_time start, sim_time end,
                            const batch_sink& sink);
  /// Consumes the remainder of the stream (counted as dropped). Call after
  /// the last round so a socket feeder's trailing bytes are drained.
  std::size_t drain();

  /// Events consumed outside every collection window (gap + drained).
  [[nodiscard]] std::uint64_t dropped_outside_windows() const noexcept {
    return dropped_;
  }
  /// True once a live (socket) stream died mid-round; the cursor then
  /// reads as exhausted.
  [[nodiscard]] bool stream_failed() const noexcept { return failed_; }

 private:
  [[nodiscard]] std::optional<tor::event> fetch();
  void pace_to(sim_time t);
  /// The per-event adapter behind paced replay: fetch, sleep to the
  /// event's sim time, deliver a one-event span.
  std::size_t stream_window_paced(sim_time start, sim_time end,
                                  const batch_sink& sink);

  workload_kind kind_;
  double pace_ = 0.0;
  std::uint64_t dropped_ = 0;
  bool failed_ = false;
  bool eof_ = false;
  std::optional<tor::event> pending_;  // lookahead held across windows
  std::optional<std::int64_t> last_paced_seconds_;

  std::unique_ptr<tor::trace_reader> reader_;               // kind == trace
  std::unique_ptr<tor::event_socket_source> socket_;        // kind == socket
  std::vector<tor::event> block_;  // reused batch buffer (trace/socket)
  std::shared_ptr<const std::vector<std::vector<tor::event>>> generated_;
  std::size_t dc_index_ = 0;
  std::size_t next_generated_ = 0;  // cursor into generated_[dc_index_]
};

/// Builds the plan's DC ingest worker pool: nullptr when
/// plan.dc_ingest_threads == 0 (every shard runs on the calling thread).
/// Callers feeding several DCs share one pool across them.
[[nodiscard]] std::shared_ptr<util::thread_pool> make_ingest_pool(
    const deployment_plan& plan);

/// Installs the plan's ingest-plane knobs (dc_shards, ingest pool) on any
/// event sink. A null pool leaves the sink's current pool untouched (the
/// in-process PSC deployment wires its own).
void configure_dc_ingest(const deployment_plan& plan, core::event_sink& dc,
                         std::shared_ptr<util::thread_pool> pool);

/// Installs the plan's extractor (psc_extractor) and ingest-plane knobs
/// on a PSC DC.
void configure_psc_dc(const deployment_plan& plan, psc::data_collector& dc,
                      std::shared_ptr<util::thread_pool> pool = nullptr);

/// Installs the plan's instruments and ingest-plane knobs on a PrivCount
/// DC.
void configure_privcount_dc(const deployment_plan& plan,
                            privcount::data_collector& dc,
                            std::shared_ptr<util::thread_pool> pool = nullptr);

/// Measurement defaults for a trace model: the instruments that consume
/// its events, their counter specs, and the PSC extractor with signal on
/// the model's event mix. tormet_tracegen writes plans from these.
struct trace_round_defaults {
  std::vector<std::string> instruments;
  std::vector<privcount::counter_spec> counters;
  std::string psc_extractor;
};
[[nodiscard]] trace_round_defaults defaults_for_model(const std::string& model);

/// Measurement defaults for a named scenario (the
/// workload::measurements_for_scenario wiring with its counter specs
/// filled in). tormet_tracegen --scenario writes plans from these.
[[nodiscard]] trace_round_defaults defaults_for_scenario(
    const std::string& name);

}  // namespace tormet::cli
