#include "src/cli/orchestrator.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <set>

#include "src/cli/node_runner.h"
#include "src/cli/workload_source.h"
#include "src/core/instruments.h"
#include "src/net/inproc.h"
#include "src/privcount/deployment.h"
#include "src/psc/deployment.h"
#include "src/relay/stats_agent.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/workload/trace_gen.h"

namespace tormet::cli {

namespace {

using clock = std::chrono::steady_clock;

/// Verifies the plan follows the canonical node-id layout the in-process
/// deployments assign (TS=0, middle nodes 1..m, DCs m+1..m+n) so the
/// reference round's wiring matches the distributed one exactly.
void check_canonical_layout(const deployment_plan& plan, node_role mid,
                            node_role dc) {
  expects(plan.tally_server_id() == 0, "plan must place the TS at node id 0");
  const std::vector<net::node_id> mids = plan.ids_with(mid);
  const std::vector<net::node_id> dcs = plan.ids_with(dc);
  expects(!mids.empty() && !dcs.empty(), "plan is missing CP/SK or DC nodes");
  for (std::size_t i = 0; i < mids.size(); ++i) {
    expects(mids[i] == 1 + i, "CP/SK node ids must be 1..m in order");
  }
  for (std::size_t i = 0; i < dcs.size(); ++i) {
    expects(dcs[i] == 1 + mids.size() + i, "DC node ids must follow the CPs/SKs");
  }
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  expects(in.good(), "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

void assign_free_ports(deployment_plan& plan) {
  // Keep every probe socket open until all ports are chosen, so the kernel
  // cannot hand the same ephemeral port out twice within one call.
  std::vector<int> probes;
  for (auto& n : plan.nodes) {
    if (n.port != 0) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    expects(fd >= 0, "socket() for port probing failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    socklen_t len = sizeof addr;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      throw net::transport_error{"port probing failed"};
    }
    n.port = ntohs(addr.sin_port);
    probes.push_back(fd);
  }
  for (const int fd : probes) ::close(fd);
}

std::string run_reference_round(const deployment_plan& plan) {
  // Socket-fed events exist only on the wire; they cannot be re-derived
  // from the plan, so there is nothing deterministic to check against.
  expects(plan.workload.kind != workload_kind::socket,
          "reference round cannot reproduce a socket-fed workload "
          "(use a trace workload for byte-identity checks)");
  const std::uint32_t rounds = std::max<std::uint32_t>(1, plan.schedule_rounds);
  const core::measurement_schedule sched = round_schedule_of(plan);

  // Per-DC event cursors persist across all rounds, exactly like the node
  // processes' streams: one open source each, windowed by the schedule,
  // gap events counted-but-dropped. `generate` workloads materialize once
  // and share across cursors. Replay pacing is a live-deployment fidelity
  // knob; the reference exists only to check bytes, so it always replays
  // at full speed (a paced plan would stall --check-inproc for real
  // wall-clock hours).
  deployment_plan unpaced = plan;
  unpaced.pace = 0.0;
  std::vector<workload_cursor> cursors;
  const auto make_cursors = [&](std::size_t dcs) {
    if (!is_event_workload(plan)) return;
    // generate/scenario workloads materialize once, shared across cursors.
    const std::shared_ptr<const std::vector<std::vector<tor::event>>> shared =
        materialize_plan_events(plan);
    for (std::size_t i = 0; i < dcs; ++i) {
      cursors.emplace_back(unpaced, i, shared);
    }
  };
  // The collection window for protocol round id `round_id` (1-based);
  // single-round plans keep the legacy whole-stream replay.
  const auto window = [&](std::uint32_t round_id) {
    return round_window_for(plan, sched, round_id - 1);
  };
  // The reference round honors the plan's ingest-plane knobs too (one
  // pool shared across every DC, like a node process shares its workers
  // across shards) — bytes are knob-independent, but exercising the same
  // path keeps the reference fast at 16-DC population scale.
  const std::shared_ptr<util::thread_pool> ingest_pool =
      is_event_workload(plan) ? make_ingest_pool(plan) : nullptr;
  // One feed path for both protocols: each DC is a core::event_sink, each
  // cursor delivers its window as contiguous spans straight into ingest().
  //
  // A `relays` workload needs no file pipeline here: the per-DC aggregated
  // relay stream is an order-preserving sampled subsequence of the cursor
  // stream (relay seq numbers are assigned in route order and the
  // aggregator merges by them), so filtering each event through the same
  // sampling predicate reproduces the distributed bytes — and degenerates
  // to the plain cursor feed at sample_prob 1.0.
  const bool sampled_relays =
      plan.workload.kind == workload_kind::relays && plan.sample_prob < 1.0;
  const std::uint64_t sampling_seed = relay::sampling_seed_of(plan.rng_seed);
  std::vector<tor::event> kept;  // reused sampling buffer
  const auto feed_window = [&](std::uint32_t round_id, auto&& sink_at) {
    const auto w = window(round_id);
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      core::event_sink& sink = sink_at(i);
      if (sampled_relays) {
        cursors[i].stream_window(
            w.start, w.end, [&](const tor::event* evs, std::size_t n) {
              kept.clear();
              for (std::size_t j = 0; j < n; ++j) {
                if (relay::sample_event(evs[j], sampling_seed,
                                        plan.sample_prob)) {
                  kept.push_back(evs[j]);
                }
              }
              if (!kept.empty()) sink.ingest(kept.data(), kept.size());
            });
        continue;
      }
      cursors[i].stream_window(
          w.start, w.end,
          [&sink](const tor::event* evs, std::size_t n) { sink.ingest(evs, n); });
    }
  };
  // Scenario-scheduled churn, mirrored from the TS runners: a DC whose
  // dropout window covers round r is excluded from the protocol for it
  // (PrivCount blinding and PSC mixing both depend on the DC membership)
  // and re-admitted when its outage ends.
  std::set<std::size_t> dark;  // DC indices currently scheduled out
  const auto apply_scheduled_churn = [&](auto& ts, std::uint32_t round_id,
                                         const std::vector<net::node_id>& ids) {
    std::set<std::size_t> want;
    for (const auto k : scheduled_dark_dcs(plan, round_id - 1)) want.insert(k);
    for (const auto k : dark) {
      if (!want.contains(k)) ts.readmit_dc(ids[k]);
    }
    for (const auto k : want) {
      if (!dark.contains(k)) ts.exclude_dc(ids[k]);
    }
    dark = std::move(want);
  };

  net::inproc_net bus;
  std::vector<std::string> tallies;
  if (plan.protocol == "psc") {
    check_canonical_layout(plan, node_role::psc_cp, node_role::psc_dc);
    const std::vector<net::node_id> dc_ids = plan.ids_with(node_role::psc_dc);
    psc::deployment_config cfg;
    cfg.num_computation_parties = plan.ids_with(node_role::psc_cp).size();
    cfg.measured_relays.resize(dc_ids.size());
    for (std::size_t i = 0; i < dc_ids.size(); ++i) {
      cfg.measured_relays[i] = static_cast<tor::relay_id>(i);  // placeholders
    }
    cfg.round = plan.round;
    cfg.rng_seed = plan.rng_seed;
    psc::deployment dep{bus, cfg};
    if (is_event_workload(plan)) {
      dep.set_extractor(core::extractor_by_name(plan.psc_extractor));
      for (std::size_t i = 0; i < dc_ids.size(); ++i) {
        configure_dc_ingest(plan, dep.dc_at(i), ingest_pool);
      }
      make_cursors(dc_ids.size());
    }
    for (std::uint32_t r = 1; r <= rounds; ++r) {
      apply_scheduled_churn(dep.ts(), r, dc_ids);
      const psc::round_outcome out = dep.run_round([&] {
        if (is_event_workload(plan)) {
          feed_window(r, [&](std::size_t i) -> core::event_sink& {
            return dep.dc_at(i);
          });
          return;
        }
        for (std::size_t i = 0; i < dc_ids.size(); ++i) {
          for (const std::string& item : items_for_dc(plan, dc_ids[i])) {
            dep.dc_at(i).insert_item(item);
          }
        }
      });
      tallies.push_back(
          serialize_psc_tally(out.raw_count, out.bins, out.total_noise_bits));
    }
    return serialize_multiround_tally(tallies);
  }

  expects(plan.protocol == "privcount", "unknown protocol in plan");
  check_canonical_layout(plan, node_role::privcount_sk, node_role::privcount_dc);
  privcount::deployment_config cfg;
  cfg.num_share_keepers = plan.ids_with(node_role::privcount_sk).size();
  cfg.measured_relays.resize(plan.ids_with(node_role::privcount_dc).size());
  for (std::size_t i = 0; i < cfg.measured_relays.size(); ++i) {
    cfg.measured_relays[i] = static_cast<tor::relay_id>(i);
  }
  cfg.privacy = plan.privacy;
  cfg.noise_enabled = plan.privcount_noise_enabled;
  cfg.rng_seed = plan.rng_seed;
  privcount::deployment dep{bus, cfg};
  if (is_event_workload(plan)) {
    for (const auto& name : plan.instruments) {
      dep.add_instrument(core::instrument_by_name(name));
    }
    for (std::size_t i = 0; i < cfg.measured_relays.size(); ++i) {
      configure_dc_ingest(plan, dep.dc_at(i), ingest_pool);
    }
    make_cursors(cfg.measured_relays.size());
  }
  const std::vector<net::node_id> pc_dc_ids =
      plan.ids_with(node_role::privcount_dc);
  for (std::uint32_t r = 1; r <= rounds; ++r) {
    apply_scheduled_churn(dep.ts(), r, pc_dc_ids);
    const std::vector<privcount::counter_result> results =
        dep.run_round(plan.counters, [&] {
          if (!is_event_workload(plan)) return;
          feed_window(r, [&](std::size_t i) -> core::event_sink& {
            return dep.dc_at(i);
          });
        });
    tallies.push_back(serialize_privcount_tally(results));
  }
  return serialize_multiround_tally(tallies);
}

distributed_round_result run_distributed_round(const deployment_plan& plan,
                                               const std::string& node_binary,
                                               const std::string& workdir,
                                               int timeout_ms) {
  expects(!node_binary.empty(), "node binary path is empty");
  expects(::access(node_binary.c_str(), X_OK) == 0,
          "node binary is not executable");
  expects(!plan.tally_path.empty(), "plan needs a tally path");

  const std::string plan_path = workdir + "/plan.cfg";
  save_plan(plan, plan_path);

  struct child {
    net::node_id id = 0;
    pid_t pid = -1;
    int exit_code = -1;
    bool exited = false;
    int restarts = 0;
    bool restart_pending = false;
    clock::time_point restart_at{};
  };
  std::vector<child> children;
  children.reserve(plan.nodes.size());

  // Spawn (and later respawn) one node process. Respawns append to the
  // node's log so the pre-crash output survives for diagnosis.
  const auto spawn = [&](net::node_id id, bool append) -> pid_t {
    const std::string log_path = workdir + "/node-" + std::to_string(id) + ".log";
    const std::string node_arg = std::to_string(id);
    const pid_t pid = ::fork();
    expects(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: redirect stdout+stderr to the per-node log, then exec.
      // Only async-signal-safe calls below (the parent is multi-threaded).
      const int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
      const int log_fd = ::open(log_path.c_str(), flags, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDOUT_FILENO);
        ::dup2(log_fd, STDERR_FILENO);
        if (log_fd > STDERR_FILENO) ::close(log_fd);
      }
      const char* argv[] = {node_binary.c_str(), "--config", plan_path.c_str(),
                            "--node", node_arg.c_str(), nullptr};
      ::execv(node_binary.c_str(), const_cast<char* const*>(argv));
      ::_exit(127);
    }
    return pid;
  };

  for (const auto& n : plan.nodes) {
    child c;
    c.id = n.id;
    c.pid = spawn(n.id, /*append=*/false);
    children.push_back(c);
  }

  // Supervisor policy: in a durable plan a child that dies with the crash
  // exit code is restarted (it replays its op-log and rejoins); a cap
  // keeps a crash-looping binary from hanging the round forever.
  constexpr int k_crash_exit_code = 42;
  const int restart_delay_ms = [] {
    const char* env = std::getenv("TORMET_RESTART_DELAY_MS");
    return env != nullptr ? std::atoi(env) : 0;
  }();

  const auto kill_all = [&] {
    for (auto& c : children) {
      if (!c.exited && !c.restart_pending) ::kill(c.pid, SIGKILL);
    }
    for (auto& c : children) {
      if (!c.exited && !c.restart_pending) {
        int status = 0;
        ::waitpid(c.pid, &status, 0);
      }
      c.exited = true;
    }
  };

  const auto deadline = clock::now() + std::chrono::milliseconds{timeout_ms};
  bool failed = false;
  for (;;) {
    std::size_t running = 0;
    for (auto& c : children) {
      if (c.exited) continue;
      if (c.restart_pending) {
        // A crashed durable node waiting out its restart delay still counts
        // as running: the round is not over, and the deadline still guards
        // against a wedged deployment.
        if (clock::now() >= c.restart_at) {
          c.pid = spawn(c.id, /*append=*/true);
          c.restart_pending = false;
          ++c.restarts;
        }
        ++running;
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) {
        c.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        if (c.exit_code == k_crash_exit_code && plan.durable() &&
            c.restarts < plan.max_restarts) {
          c.restart_pending = true;
          c.restart_at =
              clock::now() + std::chrono::milliseconds{restart_delay_ms};
          ++running;
          continue;
        }
        c.exited = true;
        if (c.exit_code != 0) failed = true;
      } else {
        ++running;
      }
    }
    if (failed) {
      kill_all();
      throw net::transport_error{
          "distributed round: a node process failed (see node-*.log under " +
          workdir + ")"};
    }
    if (running == 0) break;
    if (clock::now() >= deadline) {
      kill_all();
      throw net::transport_error{
          "distributed round: timeout after " + std::to_string(timeout_ms) +
          " ms (see node-*.log under " + workdir + ")"};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }

  distributed_round_result out;
  for (const auto& c : children) {
    out.nodes.push_back({c.id, c.exit_code, c.restarts});
  }
  out.tally = read_file(plan.tally_path);
  const std::string summary_path = plan.tally_path + ".summary";
  if (::access(summary_path.c_str(), R_OK) == 0) {
    out.summary = read_file(summary_path);
  }
  return out;
}

std::string make_round_workdir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = std::string{tmp != nullptr ? tmp : "/tmp"} +
                     "/tormet-round-XXXXXX";
  std::vector<char> buf{tmpl.begin(), tmpl.end()};
  buf.push_back('\0');
  expects(::mkdtemp(buf.data()) != nullptr, "mkdtemp failed");
  return std::string{buf.data()};
}

std::string sibling_node_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path{buf};
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  path = path.substr(0, slash) + "/tormet_node";
  return ::access(path.c_str(), X_OK) == 0 ? path : "";
}

}  // namespace tormet::cli
