// Serializable description of one distributed deployment: the node topology
// (id, role, listen address), protocol parameters, deployment seed,
// collection workload (synthetic items, trace-file replay, generated event
// streams, or socket-fed events — see workload_spec), the measurement
// wiring (instrument/extractor names), and the tally output path. A plan
// file is
// the single source of truth shared by every tormet_node process in a
// round AND by the in-process reference round the orchestrator checks
// byte-identity against — both sides derive per-node RNG streams, DC item
// sets, and role wiring from the same plan.
//
// The on-disk format is line-based text (`key value...`, '#' comments),
// chosen over an ad-hoc binary blob so operators can write configs by hand
// (see README "Running a distributed deployment"). Doubles are printed
// with round-trip precision, so serialize -> parse is lossless.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/schedule.h"
#include "src/net/tcp.h"
#include "src/privcount/counter.h"
#include "src/psc/tally_server.h"

namespace tormet::cli {

enum class node_role : std::uint8_t {
  psc_ts,
  psc_cp,
  psc_dc,
  privcount_ts,
  privcount_sk,
  privcount_dc,
};

[[nodiscard]] std::string_view role_name(node_role role);
/// Throws precondition_error on an unknown role string.
[[nodiscard]] node_role parse_role(std::string_view name);

struct node_spec {
  net::node_id id = 0;
  node_role role = node_role::psc_dc;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// What each DC measures during the collection phase. The synthetic kind is
/// the original plan-derived item workload (PSC only); the other kinds feed
/// tor::event streams through the DC's observe() pipeline:
///   trace     — DC k replays `<trace_dir>/dc-<k>.trace` (tor::trace_reader)
///   generate  — every process materializes workload::generate_trace_events
///               ({model, dcs, scale, events, seed}) and DC k replays slice k
///   socket    — DC k listens on 127.0.0.1:(event_port_base + k) and ingests
///               a trace stream a feeder pushes (tormet_tracegen --feed)
///   scenario  — every process materializes workload::generate_scenario_events
///               (a named time-varying scenario: flash_crowd, diurnal,
///               botnet_surge, relay_churn, country_block) and DC k replays
///               slice k; declared as `workload scenario
///               <name>,<scale>,<events>,<seed>[,<days>]`
///   relays    — the generate workload fed through a simulated relay fleet
///               (src/relay/): DC k's slice is routed onto relay_count/dcs
///               embedded stats agents that sample (see sample_prob),
///               publish per-window `.pub` files, and are aggregated back
///               into the DC's sharded ingest plane; declared as `workload
///               relays <count>,<model>,<scale>,<events>,<seed>[,<days>]`
enum class workload_kind : std::uint8_t {
  synthetic,
  trace,
  generate,
  socket,
  scenario,
  relays,
};

[[nodiscard]] std::string_view workload_kind_name(workload_kind kind);

struct workload_spec {
  workload_kind kind = workload_kind::synthetic;
  std::string trace_dir;              // kind == trace
  /// generate: trace model name; scenario: scenario name.
  std::string model = "zipf";
  /// generate: simulation network_scale; scenario: client-population scale.
  double scale = 1e-4;
  /// generate: zipf-model event budget; scenario: baseline actions/day.
  std::uint64_t events = 5'000;
  std::uint64_t gen_seed = 1;         // generate / scenario
  /// generate/scenario/relays: days of activity to render; day d's events
  /// carry sim times in [d·86400, (d+1)·86400).
  std::uint64_t gen_days = 1;
  std::uint16_t event_port_base = 0;  // kind == socket
  /// relays: TOTAL simulated relays across the deployment, split evenly
  /// over the DC nodes (validated: >= dc count and divisible by it).
  std::uint64_t relay_count = 0;
};

struct deployment_plan {
  /// "psc" (unique-count round) or "privcount" (counter round).
  std::string protocol = "psc";
  std::vector<node_spec> nodes;
  /// Deployment seed; node RNG streams derive from (seed, node id).
  std::uint64_t rng_seed = 3141;

  // -- PSC round parameters ------------------------------------------------
  psc::round_params round{};

  // -- PrivCount round parameters ------------------------------------------
  dp::privacy_params privacy{};
  bool privcount_noise_enabled = true;
  std::vector<privcount::counter_spec> counters;

  // -- Round schedule --------------------------------------------------------
  /// Number of measurement rounds the deployment runs. Every process stays
  /// alive across all of them: the TS opens and closes epochs while DCs keep
  /// ingesting their event stream, partitioning observed events into rounds
  /// by sim-time window (see round_schedule_of / core::measurement_schedule).
  /// 1 = the classic single round, with the whole stream replayed unwindowed.
  std::uint32_t schedule_rounds = 1;
  /// Collection-window length per round (the paper's epochs are 24 h).
  std::int64_t round_duration_s = k_measurement_round_seconds;
  /// Inter-round gap. Events observed inside a gap are counted-but-dropped.
  std::int64_t round_gap_s = 0;
  /// Straggler grace for the live pipeline: how long the TS waits for
  /// missing DC readiness/reports each phase before proceeding without the
  /// stragglers and excluding them from later rounds. 0 = strict mode: the
  /// TS waits the full round deadline and any missing DC fails the round.
  int dc_grace_ms = 0;

  // -- Collection workload -------------------------------------------------
  workload_spec workload;
  /// PSC: which item extractor maps replayed events to distinct items
  /// (core::extractor_by_name). Unused by synthetic workloads.
  std::string psc_extractor = "client_ip";
  /// PrivCount: which instruments map replayed events to counter
  /// increments (core::instrument_by_name). Required for event workloads.
  std::vector<std::string> instruments;
  /// Sim-time pacing for event replay: wall-clock seconds per simulated
  /// second (0 = replay at full speed). See tor::replay_options.
  double pace = 0.0;

  /// Synthetic workload (workload.kind == synthetic): each PSC DC inserts
  /// `items_per_dc` items unique to it plus `shared_items` items inserted
  /// by every DC (exercising the union semantics of the oblivious tables).
  /// See items_for_dc().
  std::uint64_t items_per_dc = 0;
  std::uint64_t shared_items = 0;

  /// Where the tally-server process writes the round's serialized tally.
  std::string tally_path = "tally.out";
  /// Per-phase run_until deadline for every node.
  int round_deadline_ms = 120'000;

  // -- Durability ------------------------------------------------------------
  /// When non-empty, every node keeps a write-ahead op-log + checkpoint
  /// under `<durable_dir>/node-<id>/` (util::durable_store): the TS
  /// persists completed-round tallies and exclusion state, every role
  /// persists its round position, and a restarted process replays to its
  /// pre-crash state and resumes the schedule. Empty = classic
  /// non-durable rounds.
  std::string durable_dir;
  /// TS checkpoint cadence in rounds: after every N committed rounds the
  /// op-log is folded into a checkpoint and truncated.
  std::uint32_t checkpoint_every = 8;

  /// Ingest shards per DC process (>= 1): batched events are hash-
  /// partitioned by client/circuit key across this many flat counter
  /// slabs (PrivCount) or seeded-insert buckets (PSC) before merging.
  /// Purely a throughput knob — the merged tally bytes are identical for
  /// every value, which tests/distributed_test.cpp asserts.
  std::size_t dc_shards = 1;

  /// Ingest worker threads per DC process (0 = run every shard on the
  /// calling thread). Like dc_shards, purely a throughput knob: each
  /// worker owns a disjoint set of shards, so the merged tally bytes are
  /// identical for every value.
  std::size_t dc_ingest_threads = 0;

  /// Relay-fleet circuit sampling probability in (0, 1]: each relay's
  /// stats agent keeps a circuit (all its events) iff a seed-derived hash
  /// of the circuit key clears this fraction (relay::sample_event). 1.0
  /// keeps everything — byte-identical to an unsampled cursor feed, the
  /// standing correctness gate. Only meaningful for `workload relays`.
  double sample_prob = 1.0;

  /// Supervisor restart budget per child process: a node that exits with
  /// the injected-crash code is restarted up to this many times (durable
  /// deployments only). Replaces the old hard-coded cap of 5.
  int max_restarts = 5;

  [[nodiscard]] bool durable() const noexcept { return !durable_dir.empty(); }

  [[nodiscard]] const node_spec& node(net::node_id id) const;
  [[nodiscard]] std::vector<net::node_id> ids_with(node_role role) const;
  /// The transport peer map (every node's listen address).
  [[nodiscard]] std::map<net::node_id, net::tcp_endpoint> endpoints() const;
  /// The plan's single tally-server node (psc_ts or privcount_ts).
  [[nodiscard]] net::node_id tally_server_id() const;
};

/// Round-trip-exact double formatting (%.17g) shared by the plan and
/// tally serializers — the distributed byte-identity checks depend on
/// every writer printing doubles identically.
[[nodiscard]] std::string format_double(double v);

[[nodiscard]] std::string serialize_plan(const deployment_plan& plan);
/// Parses a serialized plan; throws precondition_error with a line-numbered
/// message on malformed input. Round-trips serialize_plan exactly.
[[nodiscard]] deployment_plan parse_plan(std::string_view text);

[[nodiscard]] deployment_plan load_plan(const std::string& path);
void save_plan(const deployment_plan& plan, const std::string& path);

/// Deterministic synthetic workload for one PSC DC: `items_per_dc` items
/// unique to the node plus `shared_items` common ones. Pure function of the
/// plan and the node id, so node processes and the in-process reference
/// round insert identical item streams.
[[nodiscard]] std::vector<std::string> items_for_dc(const deployment_plan& plan,
                                                    net::node_id id);

/// The plan's round schedule as an enforceable core::measurement_schedule:
/// `schedule_rounds` windows of `round_duration_s` seconds separated by
/// `round_gap_s`, all measuring the plan's one statistic (protocol +
/// extractor/instruments). The node runner and the in-process reference
/// round both drive their epochs off this object.
[[nodiscard]] core::measurement_schedule round_schedule_of(
    const deployment_plan& plan);

/// One round's collection window, as fed to workload_cursor::stream_window.
struct round_window {
  sim_time start;
  sim_time end;
};

/// The collection window of round `round_index` (0-based). Single-round
/// plans return an unbounded window — the legacy whole-stream replay —
/// regardless of the schedule's nominal duration. Shared by
/// cli::node_runner (DC processes) and cli::run_reference_round so both
/// sides partition identically.
[[nodiscard]] round_window round_window_for(
    const deployment_plan& plan, const core::measurement_schedule& schedule,
    std::size_t round_index);

/// Position of a DC node among the plan's DC nodes (plan order) — the
/// workload partition index: DC k replays trace slice k. Throws
/// precondition_error when `id` is not a DC node of the plan.
[[nodiscard]] std::size_t dc_index_of(const deployment_plan& plan,
                                      net::node_id id);

/// Builds a small PSC deployment plan: TS node 0, CPs 1..cps, DCs after
/// (ports are left 0 — the orchestrator assigns free ones).
[[nodiscard]] deployment_plan make_psc_plan(std::size_t dcs, std::size_t cps,
                                            std::uint64_t bins);

/// Builds a PrivCount plan: TS node 0, SKs 1..sks, DCs after.
[[nodiscard]] deployment_plan make_privcount_plan(
    std::size_t dcs, std::size_t sks,
    std::vector<privcount::counter_spec> counters);

}  // namespace tormet::cli
