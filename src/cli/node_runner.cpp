#include "src/cli/node_runner.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "src/cli/workload_source.h"
#include "src/crypto/secure_rng.h"
#include "src/relay/relay_plane.h"
#include "src/relay/stats_agent.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/share_keeper.h"
#include "src/privcount/tally_server.h"
#include "src/psc/computation_party.h"
#include "src/psc/data_collector.h"
#include "src/psc/estimator.h"
#include "src/psc/tally_server.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/op_log.h"

namespace tormet::cli {

namespace {

using clock = std::chrono::steady_clock;

/// Attempts a durable TS makes per round before falling back to the
/// classic grace-and-exclude path on the final one. A crashed peer's
/// supervisor restart typically lands within the first retry.
constexpr std::uint32_t k_ts_max_attempts = 3;
/// Fabric drain between round attempts: lets the failed attempt's
/// in-flight messages land while the round guards still recognize them.
constexpr int k_retry_drain_ms = 200;
/// Upper bound on the round-boundary wait for rejoin answers from
/// queried (dropped) peers.
constexpr int k_rejoin_wait_ms = 750;
/// Exit code of an injected crash; the orchestrator's supervisor restarts
/// children that die with it (durable deployments only).
constexpr int k_crash_exit_code = 42;

/// Per-process fault injection for the multi-round test harness. Reads
/// TORMET_FAULT, a ';'-separated list of clauses
/// "<node_id> exit_after_round <k>", "<node_id> delay_round <k> <ms>",
/// "<node_id> crash_in_round <k>", "<node_id> crash_after_round <k>"
/// (k 0-based; "action:k" also parses) and merges the clauses naming this
/// process's node. Crash clauses ACCUMULATE into round sets — repeating
/// crash_in_round for one node schedules a crash in every listed round
/// (the old scalar fields silently kept only the last clause).
struct fault_spec {
  bool exit_after = false;
  std::size_t exit_round = 0;
  bool delay = false;
  std::size_t delay_round = 0;
  int delay_ms = 0;
  std::set<std::size_t> crash_in_rounds;
  std::set<std::size_t> crash_after_rounds;

  /// True when a crash_in_round clause names protocol round `round_id`
  /// (1-based, as the control messages carry it).
  [[nodiscard]] bool crash_in(std::uint32_t round_id) const {
    return round_id >= 1 && crash_in_rounds.contains(round_id - 1);
  }
  [[nodiscard]] bool crash_after(std::uint32_t round_id) const {
    return round_id >= 1 && crash_after_rounds.contains(round_id - 1);
  }
};

[[nodiscard]] fault_spec fault_for(net::node_id self) {
  fault_spec f;
  const char* env = std::getenv("TORMET_FAULT");
  if (env == nullptr) return f;
  std::istringstream clauses{env};
  std::string clause;
  while (std::getline(clauses, clause, ';')) {
    std::replace(clause.begin(), clause.end(), ':', ' ');
    std::istringstream in{clause};
    net::node_id id = 0;
    std::string action;
    in >> id >> action;
    if (in.fail() || id != self) continue;
    if (action == "exit_after_round") {
      in >> f.exit_round;
      f.exit_after = !in.fail();
    } else if (action == "delay_round") {
      in >> f.delay_round >> f.delay_ms;
      f.delay = !in.fail();
    } else if (action == "crash_in_round") {
      std::size_t round = 0;
      in >> round;
      if (!in.fail()) f.crash_in_rounds.insert(round);
    } else if (action == "crash_after_round") {
      std::size_t round = 0;
      in >> round;
      if (!in.fail()) f.crash_after_rounds.insert(round);
    }
  }
  return f;
}

/// Fires an injected crash via _Exit(42): no flushes, no destructors — the
/// op-log write()s already issued are all that survive, exactly like a real
/// kill. In a durable deployment the crash fires at most once per
/// (action, round): a marker file under durable_dir outlives the restart.
void maybe_crash(const deployment_plan& plan, net::node_id self,
                 const char* action, std::size_t round_index) {
  if (plan.durable()) {
    const std::string marker = plan.durable_dir + "/crashed-" +
                               std::to_string(self) + "-" + action + "-" +
                               std::to_string(round_index);
    const int fd =
        ::open(marker.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) return;  // already fired in a previous incarnation
    ::close(fd);
  }
  log_line{log_level::warn} << "node " << self << ": injected crash (" << action
                            << " " << round_index << ")";
  std::_Exit(k_crash_exit_code);
}

// -- durable state -----------------------------------------------------------

/// Per-DC participation counters for the privacy-safe round summary: they
/// count protocol outcomes (reports present/absent, exclusions, rejoins),
/// never measurement data.
struct dc_counters {
  std::uint64_t reported = 0;
  std::uint64_t missed = 0;
  std::uint64_t excluded = 0;
  std::uint64_t rejoined = 0;
};

/// One committed round, as appended to the TS op-log: the round's tally
/// bytes plus the participation deltas recovery folds back into the
/// cumulative state.
struct round_record {
  std::uint32_t round = 0;
  std::uint32_t retries = 0;
  std::set<net::node_id> dropped;  // full dropped set at end of round
  std::map<net::node_id, dc_counters> delta;  // 0/1 flags for this round
  std::string tally;
};

/// Cumulative TS state: what op-log replay reconstructs after a restart.
struct ts_state {
  std::unique_ptr<util::durable_store> store;  // null: classic deployment
  std::vector<std::string> tallies;
  std::set<net::node_id> dropped;
  std::map<net::node_id, dc_counters> counters;
  std::uint64_t retries_total = 0;
  std::uint32_t next_round = 1;  // first round this process still owes
};

[[noreturn]] void record_fail(const char* what) {
  throw util::op_log_error{std::string{"TS durable record: "} + what};
}

[[nodiscard]] std::string encode_round_record(const round_record& r) {
  std::ostringstream out;
  out << "tormet-ts-round-v1\n";
  out << "round " << r.round << "\n";
  out << "retries " << r.retries << "\n";
  out << "dropped";
  for (const auto id : r.dropped) out << " " << id;
  out << "\n";
  for (const auto& [id, c] : r.delta) {
    out << "dc " << id << " " << c.reported << " " << c.missed << " "
        << c.excluded << " " << c.rejoined << "\n";
  }
  out << "tally " << r.tally.size() << "\n" << r.tally;
  return out.str();
}

/// Reads "tally <len>\n<len raw bytes>" from `in` (shared by the round
/// record and the checkpoint decoders).
[[nodiscard]] std::string read_tally_bytes(std::istream& in,
                                           const std::string& line) {
  std::istringstream ls{line};
  std::string key;
  std::uint64_t len = 0;
  if (!(ls >> key >> len) || key != "tally" || len > (64u << 20)) {
    record_fail("bad tally length");
  }
  std::string tally(static_cast<std::size_t>(len), '\0');
  in.read(tally.data(), static_cast<std::streamsize>(len));
  if (static_cast<std::uint64_t>(in.gcount()) != len) {
    record_fail("truncated tally bytes");
  }
  return tally;
}

[[nodiscard]] round_record decode_round_record(byte_view payload) {
  std::istringstream in{std::string{payload.begin(), payload.end()}};
  std::string line;
  if (!std::getline(in, line) || line != "tormet-ts-round-v1") {
    record_fail("bad round-record magic");
  }
  round_record r;
  bool have_tally = false;
  while (!have_tally && std::getline(in, line)) {
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    if (key == "round") {
      if (!(ls >> r.round)) record_fail("bad round line");
    } else if (key == "retries") {
      if (!(ls >> r.retries)) record_fail("bad retries line");
    } else if (key == "dropped") {
      net::node_id id = 0;
      while (ls >> id) r.dropped.insert(id);
    } else if (key == "dc") {
      net::node_id id = 0;
      dc_counters c;
      if (!(ls >> id >> c.reported >> c.missed >> c.excluded >> c.rejoined)) {
        record_fail("bad dc line");
      }
      r.delta[id] = c;
    } else if (key == "tally") {
      r.tally = read_tally_bytes(in, line);
      have_tally = true;
    } else {
      record_fail("unknown round-record key");
    }
  }
  if (r.round == 0 || !have_tally) record_fail("incomplete round record");
  return r;
}

/// Folds one committed round into the cumulative state — the single code
/// path shared by live commits and crash-recovery replay, so a restarted
/// TS reconstructs exactly what the previous incarnation held.
void apply_round_record(ts_state& s, const round_record& r) {
  if (r.round != s.next_round) record_fail("round gap in op-log");
  s.tallies.push_back(r.tally);
  s.dropped = r.dropped;
  for (const auto& [id, c] : r.delta) {
    s.counters[id].reported += c.reported;
    s.counters[id].missed += c.missed;
    s.counters[id].excluded += c.excluded;
    s.counters[id].rejoined += c.rejoined;
  }
  s.retries_total += r.retries;
  s.next_round = r.round + 1;
}

[[nodiscard]] std::string encode_ts_checkpoint(const ts_state& s) {
  std::ostringstream out;
  out << "tormet-ts-ckpt-v1\n";
  out << "next_round " << s.next_round << "\n";
  out << "retries " << s.retries_total << "\n";
  out << "dropped";
  for (const auto id : s.dropped) out << " " << id;
  out << "\n";
  for (const auto& [id, c] : s.counters) {
    out << "dc " << id << " " << c.reported << " " << c.missed << " "
        << c.excluded << " " << c.rejoined << "\n";
  }
  for (const auto& t : s.tallies) {
    out << "tally " << t.size() << "\n" << t;
  }
  return out.str();
}

void apply_ts_checkpoint(ts_state& s, byte_view payload) {
  std::istringstream in{std::string{payload.begin(), payload.end()}};
  std::string line;
  if (!std::getline(in, line) || line != "tormet-ts-ckpt-v1") {
    record_fail("bad checkpoint magic");
  }
  while (std::getline(in, line)) {
    std::istringstream ls{line};
    std::string key;
    ls >> key;
    if (key == "next_round") {
      if (!(ls >> s.next_round) || s.next_round == 0) {
        record_fail("bad next_round line");
      }
    } else if (key == "retries") {
      if (!(ls >> s.retries_total)) record_fail("bad retries line");
    } else if (key == "dropped") {
      net::node_id id = 0;
      while (ls >> id) s.dropped.insert(id);
    } else if (key == "dc") {
      net::node_id id = 0;
      dc_counters c;
      if (!(ls >> id >> c.reported >> c.missed >> c.excluded >> c.rejoined)) {
        record_fail("bad dc line");
      }
      s.counters[id] = c;
    } else if (key == "tally") {
      s.tallies.push_back(read_tally_bytes(in, line));
    } else {
      record_fail("unknown checkpoint key");
    }
  }
  if (s.tallies.size() + 1 != s.next_round) {
    record_fail("checkpoint tally count does not match next_round");
  }
}

[[nodiscard]] ts_state load_ts_state(const deployment_plan& plan,
                                     net::node_id self) {
  ts_state s;
  if (!plan.durable()) return s;
  s.store = std::make_unique<util::durable_store>(
      plan.durable_dir + "/node-" + std::to_string(self));
  const util::durable_state& rec = s.store->recovered();
  if (rec.has_checkpoint) apply_ts_checkpoint(s, rec.checkpoint);
  for (const auto& r : rec.records) {
    apply_round_record(s, decode_round_record(r));
  }
  if (s.next_round > 1) {
    log_line{log_level::info}
        << "TS: recovered " << s.tallies.size()
        << " committed round(s) from the op-log; resuming at round "
        << s.next_round;
  }
  return s;
}

/// The privacy-safe deployment summary: round/retry totals and per-DC
/// participation counters. Kept OUT of the tally bytes (a sidecar file) so
/// observability never perturbs the byte-identity gate.
[[nodiscard]] std::string ts_summary(const ts_state& s,
                                     const std::string& protocol) {
  std::ostringstream out;
  out << "tormet-summary-v1\n";
  out << "protocol " << protocol << "\n";
  out << "rounds " << (s.next_round - 1) << "\n";
  out << "round_retries " << s.retries_total << "\n";
  out << "excluded_now";
  for (const auto id : s.dropped) out << " " << id;
  out << "\n";
  for (const auto& [id, c] : s.counters) {
    out << "dc " << id << " reported " << c.reported << " missed " << c.missed
        << " excluded " << c.excluded << " rejoined " << c.rejoined << "\n";
  }
  return out.str();
}

/// Commits one round: folds it into the cumulative state, appends the
/// op-log record (checkpointing on the plan's cadence), and rewrites the
/// tally file plus its .summary sidecar atomically.
void commit_round(ts_state& s, const deployment_plan& plan, round_record rec,
                  const std::string& protocol) {
  apply_round_record(s, rec);
  if (s.store != nullptr) {
    s.store->append(as_bytes(encode_round_record(rec)));
    if (plan.checkpoint_every > 0 && rec.round % plan.checkpoint_every == 0) {
      s.store->write_checkpoint(as_bytes(encode_ts_checkpoint(s)));
    }
  }
  write_file_atomic(plan.tally_path, serialize_multiround_tally(s.tallies));
  write_file_atomic(plan.tally_path + ".summary", ts_summary(s, protocol));
}

/// Rewrites the .summary sidecar with the DCs' privacy-safe accounting
/// lines appended (`dc_stats <id> <line>` per payload line). Called once
/// after the completion handshake: each DC's DC_STATS message rides the
/// same channel as its ROUND_ACK, so by the time every surviving ack is
/// in, every surviving DC's stats are too. A map keyed by node id keeps
/// the line order deterministic.
void write_summary_with_dc_stats(
    const ts_state& s, const deployment_plan& plan, const std::string& protocol,
    const std::map<net::node_id, std::string>& dc_stats) {
  if (dc_stats.empty()) return;  // nothing beyond what commit_round wrote
  std::ostringstream out;
  out << ts_summary(s, protocol);
  for (const auto& [id, text] : dc_stats) {
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out << "dc_stats " << id << " " << line << "\n";
    }
  }
  write_file_atomic(plan.tally_path + ".summary", out.str());
}

// -- non-TS durable position -------------------------------------------------

/// The 1-based round id the store's previous incarnation last saw (0 for a
/// fresh start). Non-TS roles persist only this schedule position: every
/// other bit of per-round state is re-derived byte-identically from
/// (plan seed, node id, round id) when the TS re-drives the round.
[[nodiscard]] std::uint32_t recovered_round(const util::durable_store& store) {
  const auto parse = [](byte_view payload) -> std::uint32_t {
    std::istringstream in{std::string{payload.begin(), payload.end()}};
    std::string key;
    std::uint32_t r = 0;
    if (!(in >> key >> r) || key != "round") {
      throw util::op_log_error{"node round record malformed"};
    }
    return r;
  };
  std::uint32_t round = 0;
  const util::durable_state& rec = store.recovered();
  if (rec.has_checkpoint) round = parse(rec.checkpoint);
  for (const auto& r : rec.records) round = parse(r);
  return round;
}

[[nodiscard]] std::unique_ptr<util::durable_store> open_node_store(
    const deployment_plan& plan, net::node_id self) {
  if (!plan.durable()) return nullptr;
  auto store = std::make_unique<util::durable_store>(
      plan.durable_dir + "/node-" + std::to_string(self));
  const std::uint32_t round = recovered_round(*store);
  if (round > 0) {
    log_line{log_level::info} << "node " << self
                              << ": recovered durable position at round "
                              << round;
  }
  return store;
}

void record_node_round(util::durable_store& store, std::uint32_t round,
                       std::uint32_t checkpoint_every) {
  const std::string rec = "round " + std::to_string(round);
  store.append(as_bytes(rec));
  if (checkpoint_every > 0 && round % checkpoint_every == 0) {
    store.write_checkpoint(as_bytes(rec));
  }
}

// -- transport helpers -------------------------------------------------------

/// Transport decorator for the tally-server role: a send to an unreachable
/// peer is logged and dropped instead of failing the whole deployment — a
/// dead DC must not take the TS (and every later round) down with it.
/// Missing peers still surface, as completion-predicate timeouts or as
/// grace-based exclusion.
class tolerant_transport final : public net::transport {
 public:
  explicit tolerant_transport(net::tcp_net& inner) : inner_{inner} {}

  void register_node(net::node_id id, net::message_handler handler) override {
    inner_.register_node(id, std::move(handler));
  }
  void send(net::message msg) override {
    const net::node_id to = msg.to;
    try {
      inner_.send(std::move(msg));
    } catch (const net::transport_error& e) {
      log_line{log_level::warn}
          << "TS: send to node " << to << " failed (" << e.what()
          << "); dropping";
    }
  }
  std::size_t run_until_quiescent() override {
    return inner_.run_until_quiescent();
  }
  void run_until(const std::function<bool()>& done, int deadline_ms) override {
    inner_.run_until(done, deadline_ms);
  }

 private:
  net::tcp_net& inner_;
};

/// Runs the fabric until `done` holds or `grace_ms` elapses, whichever is
/// first; returns done(). The straggler-tolerance primitive of the live
/// pipeline: the caller decides what to do about peers that missed the
/// window.
[[nodiscard]] bool run_with_grace(net::tcp_net& net,
                                  const std::function<bool()>& done,
                                  int grace_ms) {
  const auto grace_end = clock::now() + std::chrono::milliseconds{grace_ms};
  // The predicate flips at the grace, so the outer deadline is pure slack;
  // widen the sum in case a hand-built plan carries an enormous grace.
  const int deadline = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(grace_ms) + 60'000,
                             std::numeric_limits<int>::max()));
  net.run_until([&] { return done() || clock::now() >= grace_end; }, deadline);
  return done();
}

/// The serve deadline for a non-TS node: the whole schedule runs in one
/// process lifetime, and per round the TS may spend a full phase deadline
/// plus up to two grace windows waiting out stragglers before this peer
/// sees the next message — budget all of it (times the retry bound when
/// the deployment is durable), plus one final deadline for the completion
/// handshake.
[[nodiscard]] int serve_deadline_ms(const deployment_plan& plan) {
  const std::int64_t attempts = plan.durable() ? k_ts_max_attempts : 1;
  const std::int64_t per_round =
      attempts * (static_cast<std::int64_t>(plan.round_deadline_ms) +
                  2 * static_cast<std::int64_t>(std::max(0, plan.dc_grace_ms)) +
                  k_retry_drain_ms + k_rejoin_wait_ms);
  const std::int64_t total =
      per_round * std::max<std::uint32_t>(1, plan.schedule_rounds) +
      plan.round_deadline_ms;
  return static_cast<int>(
      std::min<std::int64_t>(total, std::numeric_limits<int>::max()));
}

/// Excludes every current DC that `still_missing` reports as absent,
/// keeping at least one: with the whole DC population gone there is no
/// degraded round to salvage — the phase deadline then fails the round
/// with a clear timeout instead of an exclusion crash.
void exclude_stragglers(const std::function<void(net::node_id)>& exclude,
                        std::vector<net::node_id> current,  // copy: exclude()
                                                            // mutates the live
                                                            // DC list
                        const std::function<bool(net::node_id)>& still_missing,
                        std::set<net::node_id>& dropped) {
  std::size_t remaining = current.size();
  for (const auto id : current) {
    if (!still_missing(id)) continue;
    if (remaining <= 1) {
      log_line{log_level::warn}
          << "TS: every remaining DC missed the grace; keeping DC " << id
          << " and waiting out the round deadline";
      break;
    }
    exclude(id);
    dropped.insert(id);
    --remaining;
  }
}

/// Round-boundary rejoin admission (durable deployments only): queries
/// every currently-dropped peer, waits briefly for answers, then re-admits
/// every pending requester that was dropped. Restarted nodes announce
/// themselves unsolicited at startup, so the common case pays no wait.
void admit_rejoiners(net::transport& out, net::tcp_net& net,
                     const deployment_plan& plan, net::node_id self,
                     const std::function<void(net::node_id)>& readmit,
                     std::set<net::node_id>& dropped,
                     std::set<net::node_id>& pending,
                     std::set<net::node_id>& rejoined_now) {
  if (!plan.durable()) return;  // classic deployments: exclusion is final
  if (!dropped.empty()) {
    for (const auto id : dropped) {
      if (pending.contains(id)) continue;
      out.send(net::message{
          self, id, static_cast<std::uint16_t>(ctl_msg::rejoin_query), {}});
    }
    const auto all_answered = [&] {
      return std::all_of(dropped.begin(), dropped.end(), [&](net::node_id id) {
        return pending.contains(id);
      });
    };
    int wait_ms = k_rejoin_wait_ms;
    if (plan.dc_grace_ms > 0) wait_ms = std::min(wait_ms, plan.dc_grace_ms);
    (void)run_with_grace(net, all_answered, wait_ms);
  }
  for (const auto id : pending) {
    if (dropped.erase(id) > 0) {
      readmit(id);
      rejoined_now.insert(id);
    }
  }
  pending.clear();
}

/// Sends ROUND_DONE to every peer and blocks until each *surviving* peer
/// replied ROUND_ACK (peers in `dropped` were excluded mid-deployment; an
/// ack from them anyway is harmless).
void finish_round_as_ts(net::transport& out, net::tcp_net& net,
                        const deployment_plan& plan, net::node_id self,
                        const std::set<net::node_id>& dropped,
                        std::size_t& acks) {
  std::size_t expected = 0;
  for (const auto& n : plan.nodes) {
    if (n.id == self) continue;
    if (!dropped.contains(n.id)) ++expected;
    out.send(net::message{self, n.id,
                          static_cast<std::uint16_t>(ctl_msg::round_done),
                          {}});
  }
  net.run_until([&] { return acks >= expected; }, plan.round_deadline_ms);
  net.flush_sends();
}

/// Serves a non-TS role until the TS's ROUND_DONE arrives (or `quit_early`
/// fires — the fault-injection exit), then acks and flushes. `handle`
/// processes protocol messages; rejoin control traffic is answered here.
/// When `final_stats` is set, its text rides a DC_STATS message sent
/// BEFORE the ack on the same channel — per-channel FIFO guarantees the
/// TS folds the stats into the .summary sidecar before it stops waiting.
void serve_until_done(net::tcp_net& net, const deployment_plan& plan,
                      net::node_id self, net::node_id ts_id,
                      const std::function<void(const net::message&)>& handle,
                      const std::function<bool()>& quit_early = nullptr,
                      const std::function<std::string()>& final_stats = nullptr) {
  bool done = false;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_done)) {
      try {
        if (final_stats != nullptr) {
          const std::string stats = final_stats();
          net.send(net::message{self, ts_id,
                                static_cast<std::uint16_t>(ctl_msg::dc_stats),
                                byte_buffer{stats.begin(), stats.end()}});
        }
        net.send(net::message{self, ts_id,
                              static_cast<std::uint16_t>(ctl_msg::round_ack),
                              {}});
      } catch (const net::transport_error&) {
        // A fault-tolerant TS that already excluded this node does not wait
        // for the ack; acking into a closed channel must not fail the node.
      }
      done = true;
      return;
    }
    if (m.type == static_cast<std::uint16_t>(ctl_msg::rejoin_ack)) return;
    if (m.type == static_cast<std::uint16_t>(ctl_msg::rejoin_query)) {
      // The TS probes dropped peers at round boundaries; answering
      // re-admits this node from the next round.
      try {
        net.send(net::message{
            self, ts_id, static_cast<std::uint16_t>(ctl_msg::rejoin_request),
            {}});
      } catch (const net::transport_error&) {
      }
      return;
    }
    handle(m);
  });
  if (plan.durable()) {
    // Announce presence: a restarted node re-admits itself; on a cold
    // start the TS's re-admission of an existing member is a no-op.
    try {
      net.send(net::message{
          self, ts_id, static_cast<std::uint16_t>(ctl_msg::rejoin_request),
          {}});
    } catch (const net::transport_error&) {
    }
  }
  net.run_until(
      [&] { return done || (quit_early != nullptr && quit_early()); },
      serve_deadline_ms(plan));
  net.flush_sends();
}

// -- DC window replay --------------------------------------------------------

/// Minimal event_sink adapter: forwards ingest spans to a callback. Used
/// to interpose the replay buffer between the relay aggregator and the
/// real DC sink (the aggregator only ever calls ingest()).
class callback_sink final : public core::event_sink {
 public:
  explicit callback_sink(
      std::function<void(const tor::event*, std::size_t)> fn)
      : fn_{std::move(fn)} {}

  void observe(const tor::event& ev) override { fn_(&ev, 1); }
  void ingest(const tor::event* evs, std::size_t n) override { fn_(evs, n); }
  void set_shards(std::size_t) override {}
  [[nodiscard]] std::size_t shards() const noexcept override { return 1; }
  void set_thread_pool(std::shared_ptr<util::thread_pool>) override {}
  [[nodiscard]] std::uint64_t events_observed() const noexcept override {
    return 0;
  }

 private:
  std::function<void(const tor::event*, std::size_t)> fn_;
};

/// Replays per-round collection windows with crash/retry support. The
/// cursor consumes its event stream monotonically, so a re-driven round
/// (durable TS retry) cannot re-pull its window from the source — the last
/// streamed window is buffered and replayed verbatim instead. A restarted
/// DC holds a rebuilt cursor: asking it for the current window auto-drops
/// the already-processed prefix (events outside the requested window are
/// counted-but-dropped), which re-positions the stream without any
/// bookkeeping.
///
/// With a relay plane attached (workload relays), the window detours
/// through the simulated fleet: cursor -> route() onto the per-relay
/// stats agents -> per-relay .pub publish -> aggregator merge -> sink.
/// The buffer then holds the POST-aggregation merged span, so a durable
/// retry re-ingests identical bytes without re-publishing.
class windowed_replay {
 public:
  explicit windowed_replay(bool buffering, relay::relay_plane* plane = nullptr)
      : buffering_{buffering}, plane_{plane} {}

  std::size_t replay(workload_cursor& cursor, const round_window& w,
                     std::size_t index, core::event_sink& sink) {
    if (buffering_ && index == last_index_) {
      if (!buffer_.empty()) sink.ingest(buffer_.data(), buffer_.size());
      return buffer_.size();
    }
    if (last_index_ != k_none && index <= last_index_) {
      log_line{log_level::warn}
          << "DC replay: window " << index
          << " already consumed and not buffered; skipping";
      return 0;
    }
    buffer_.clear();
    std::size_t n = 0;
    if (plane_ != nullptr) {
      cursor.stream_window(w.start, w.end,
                           [&](const tor::event* evs, std::size_t k) {
                             plane_->route(evs, k);
                           });
      callback_sink tee{[&](const tor::event* evs, std::size_t k) {
        if (buffering_) buffer_.insert(buffer_.end(), evs, evs + k);
        sink.ingest(evs, k);
      }};
      n = plane_->close_window(index, tee);
    } else {
      n = cursor.stream_window(
          w.start, w.end, [&](const tor::event* evs, std::size_t k) {
            if (buffering_) buffer_.insert(buffer_.end(), evs, evs + k);
            sink.ingest(evs, k);
          });
    }
    last_index_ = index;
    return n;
  }

 private:
  static constexpr std::size_t k_none = static_cast<std::size_t>(-1);
  bool buffering_;
  relay::relay_plane* plane_;
  std::size_t last_index_ = k_none;
  std::vector<tor::event> buffer_;
};

/// The privacy-safe per-DC accounting a DC ships to the TS during the
/// completion handshake: `key value...` lines (never measurement data).
/// The TS prefixes each with `dc_stats <id> ` in the .summary sidecar —
/// this is where workload_cursor::dropped_outside_windows() finally
/// surfaces, and where a relay fleet's aggregation accounting lands.
[[nodiscard]] std::string dc_stats_payload(const workload_cursor& cursor,
                                           const relay::relay_plane* plane) {
  std::ostringstream out;
  out << "window_dropped " << cursor.dropped_outside_windows() << "\n";
  out << "stream_failed " << (cursor.stream_failed() ? 1 : 0) << "\n";
  if (plane != nullptr) {
    const relay::aggregate_stats& t = plane->totals();
    out << "relay_fleet " << plane->relays() << " windows "
        << t.windows_ingested << " events " << t.events_ingested
        << " observed " << t.observed << " sampled " << t.sampled
        << " missing " << t.missing << " duplicates " << t.duplicates
        << " late " << t.late << " late_dropped " << t.late_dropped
        << " rejected " << t.rejected << "\n";
  }
  return out.str();
}

// -- tally-server runners ----------------------------------------------------

[[nodiscard]] node_result run_psc_ts(net::tcp_net& net,
                                     const deployment_plan& plan,
                                     net::node_id self) {
  tolerant_transport ts_net{net};
  psc::tally_server ts{self, ts_net, plan.ids_with(node_role::psc_dc),
                       plan.ids_with(node_role::psc_cp)};
  ts_state state = load_ts_state(plan, self);
  const fault_spec fault = fault_for(self);
  std::size_t acks = 0;
  std::set<net::node_id> rejoin_pending;
  std::map<net::node_id, std::string> dc_stats_payloads;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    if (m.type == static_cast<std::uint16_t>(ctl_msg::dc_stats)) {
      dc_stats_payloads[m.from] =
          std::string{m.payload.begin(), m.payload.end()};
      return;
    }
    if (m.type == static_cast<std::uint16_t>(ctl_msg::rejoin_request)) {
      rejoin_pending.insert(m.from);
      ts_net.send(net::message{
          self, m.from, static_cast<std::uint16_t>(ctl_msg::rejoin_ack), {}});
      return;
    }
    ts.handle_message(m);
  });

  const std::uint32_t rounds = std::max<std::uint32_t>(1, plan.schedule_rounds);
  const std::uint32_t max_attempts = plan.durable() ? k_ts_max_attempts : 1;
  // Grace for the fail-fast recovery attempts: a plan without an explicit
  // grace still should not burn the whole (2-minute default) phase deadline
  // before retrying a crashed peer — the final attempt keeps the full one.
  const int phase_grace = plan.dc_grace_ms > 0
                              ? plan.dc_grace_ms
                              : std::min(plan.round_deadline_ms, 10'000);
  // Scenario-scheduled churn: a DC whose dropout window covers a whole
  // round is excluded for it and re-admitted when the outage ends — the
  // rejoin machinery driven by the plan instead of by missed graces. Pure
  // plan function, so the reference round derives the identical schedule.
  // Seeded from the resume point so a restarted TS re-admits last round's
  // dark DCs exactly like an uninterrupted one.
  const std::vector<net::node_id> dc_ids = plan.ids_with(node_role::psc_dc);
  std::set<net::node_id> scheduled_dark;
  if (state.next_round > 1) {
    for (const auto k : scheduled_dark_dcs(plan, state.next_round - 2)) {
      scheduled_dark.insert(dc_ids[k]);
    }
  }
  for (std::uint32_t r = state.next_round; r <= rounds; ++r) {
    const std::set<net::node_id> dropped_before = state.dropped;
    std::set<net::node_id> rejoined_now;
    std::set<net::node_id> sched_excluded_now;
    std::set<net::node_id> sched_rejoined_now;
    {
      std::set<net::node_id> want_dark;
      for (const auto k : scheduled_dark_dcs(plan, r - 1)) {
        want_dark.insert(dc_ids[k]);
      }
      for (const auto id : scheduled_dark) {
        if (want_dark.contains(id)) continue;
        ts.readmit_dc(id);
        sched_rejoined_now.insert(id);
      }
      for (const auto id : want_dark) {
        if (scheduled_dark.contains(id)) continue;
        ts.exclude_dc(id);
        sched_excluded_now.insert(id);
      }
      scheduled_dark = std::move(want_dark);
    }
    std::uint32_t attempt = 0;
    bool done = false;
    for (; attempt < max_attempts && !done; ++attempt) {
      const bool last_attempt = attempt + 1 == max_attempts;
      if (attempt > 0) {
        ++state.retries_total;
        log_line{log_level::warn}
            << "TS: round " << r << " attempt " << attempt
            << " failed; draining and retrying";
        // Quiesce: let the failed attempt's in-flight messages land now,
        // while the round guards still recognize (and drop or dedup) them,
        // instead of racing the retry.
        (void)run_with_grace(net, [] { return false; }, k_retry_drain_ms);
      }
      admit_rejoiners(ts_net, net, plan, self,
                      [&](net::node_id id) { ts.readmit_dc(id); },
                      state.dropped, rejoin_pending, rejoined_now);
      ts.resume_at_round(r);
      ts.begin_round(plan.round);
      if (fault.crash_in(r)) {
        maybe_crash(plan, self, "crash_in_round", r - 1);
      }
      const auto all_reported = [&] {
        return ts.reporting_dcs().size() >= ts.data_collectors().size();
      };
      if (!last_attempt) {
        // Recovery attempt: fail fast on any missing peer and re-drive the
        // whole round — per-round determinism makes the retry
        // byte-identical, so waiting out a restart beats excluding data.
        if (!run_with_grace(net, [&] { return ts.setup_complete(); },
                            phase_grace)) {
          continue;
        }
        ts.request_reports();
        if (!run_with_grace(net, all_reported, phase_grace)) continue;
        if (!run_with_grace(net, [&] { return ts.result_ready(); },
                            plan.round_deadline_ms)) {
          continue;
        }
        done = true;
        continue;
      }
      // Final (or only) attempt: the classic grace-and-exclude path.
      net.run_until([&] { return ts.setup_complete(); },
                    plan.round_deadline_ms);
      // DCs replay their round window (or insert their plan-derived items)
      // immediately after handling dc_configure; per-channel FIFO
      // guarantees the report request below is processed only after that.
      ts.request_reports();
      if (plan.dc_grace_ms > 0) {
        if (!run_with_grace(net, all_reported, plan.dc_grace_ms)) {
          // Stragglers past the grace are dropped from the deployment; the
          // mix starts on the tables that made it (the union just excludes
          // the dead DCs' observations).
          exclude_stragglers(
              [&](net::node_id id) { ts.exclude_dc(id); },
              ts.data_collectors(),
              [&](net::node_id id) { return !ts.reporting_dcs().contains(id); },
              state.dropped);
          if (!ts.reporting_dcs().empty()) ts.force_mixing();
        }
      }
      net.run_until([&] { return ts.result_ready(); }, plan.round_deadline_ms);
      done = ts.result_ready();
    }

    round_record rec;
    rec.round = r;
    rec.retries = attempt - 1;
    rec.dropped = state.dropped;
    for (const auto& n : plan.nodes) {
      if (n.role != node_role::psc_dc) continue;
      dc_counters c;
      (ts.reporting_dcs().contains(n.id) ? c.reported : c.missed) = 1;
      if (state.dropped.contains(n.id) && !dropped_before.contains(n.id)) {
        c.excluded = 1;
      }
      if (sched_excluded_now.contains(n.id)) c.excluded = 1;
      if (rejoined_now.contains(n.id) || sched_rejoined_now.contains(n.id)) {
        c.rejoined = 1;
      }
      rec.delta[n.id] = c;
    }
    // raw_count() throws if the round never completed — the node then exits
    // nonzero and the orchestrator reports the failure.
    rec.tally = serialize_psc_tally(ts.raw_count(), ts.params().bins,
                                    ts.total_noise_bits());
    commit_round(state, plan, std::move(rec), "psc");
    if (fault.crash_after(r)) {
      maybe_crash(plan, self, "crash_after_round", r - 1);
    }
  }

  node_result out;
  out.tally = serialize_multiround_tally(state.tallies);
  finish_round_as_ts(ts_net, net, plan, self, state.dropped, acks);
  write_summary_with_dc_stats(state, plan, "psc", dc_stats_payloads);
  return out;
}

[[nodiscard]] node_result run_privcount_ts(net::tcp_net& net,
                                           const deployment_plan& plan,
                                           net::node_id self) {
  tolerant_transport ts_net{net};
  privcount::tally_server ts{self, ts_net,
                             plan.ids_with(node_role::privcount_dc),
                             plan.ids_with(node_role::privcount_sk)};
  ts.set_noise_enabled(plan.privcount_noise_enabled);
  ts_state state = load_ts_state(plan, self);
  const fault_spec fault = fault_for(self);
  std::size_t acks = 0;
  std::set<net::node_id> rejoin_pending;
  std::map<net::node_id, std::string> dc_stats_payloads;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    if (m.type == static_cast<std::uint16_t>(ctl_msg::dc_stats)) {
      dc_stats_payloads[m.from] =
          std::string{m.payload.begin(), m.payload.end()};
      return;
    }
    if (m.type == static_cast<std::uint16_t>(ctl_msg::rejoin_request)) {
      rejoin_pending.insert(m.from);
      ts_net.send(net::message{
          self, m.from, static_cast<std::uint16_t>(ctl_msg::rejoin_ack), {}});
      return;
    }
    ts.handle_message(m);
  });

  const std::uint32_t rounds = std::max<std::uint32_t>(1, plan.schedule_rounds);
  const std::uint32_t max_attempts = plan.durable() ? k_ts_max_attempts : 1;
  // Grace for the fail-fast recovery attempts: a plan without an explicit
  // grace still should not burn the whole (2-minute default) phase deadline
  // before retrying a crashed peer — the final attempt keeps the full one.
  const int phase_grace = plan.dc_grace_ms > 0
                              ? plan.dc_grace_ms
                              : std::min(plan.round_deadline_ms, 10'000);
  // Scenario-scheduled churn, exactly as in run_psc_ts: plan-derived
  // whole-round outages map to exclude/readmit at round boundaries.
  const std::vector<net::node_id> dc_ids =
      plan.ids_with(node_role::privcount_dc);
  std::set<net::node_id> scheduled_dark;
  if (state.next_round > 1) {
    for (const auto k : scheduled_dark_dcs(plan, state.next_round - 2)) {
      scheduled_dark.insert(dc_ids[k]);
    }
  }
  for (std::uint32_t r = state.next_round; r <= rounds; ++r) {
    const std::set<net::node_id> dropped_before = state.dropped;
    std::set<net::node_id> rejoined_now;
    std::set<net::node_id> sched_excluded_now;
    std::set<net::node_id> sched_rejoined_now;
    {
      std::set<net::node_id> want_dark;
      for (const auto k : scheduled_dark_dcs(plan, r - 1)) {
        want_dark.insert(dc_ids[k]);
      }
      for (const auto id : scheduled_dark) {
        if (want_dark.contains(id)) continue;
        ts.readmit_dc(id);
        sched_rejoined_now.insert(id);
      }
      for (const auto id : want_dark) {
        if (scheduled_dark.contains(id)) continue;
        ts.exclude_dc(id);
        sched_excluded_now.insert(id);
      }
      scheduled_dark = std::move(want_dark);
    }
    std::uint32_t attempt = 0;
    bool done = false;
    for (; attempt < max_attempts && !done; ++attempt) {
      const bool last_attempt = attempt + 1 == max_attempts;
      if (attempt > 0) {
        ++state.retries_total;
        log_line{log_level::warn}
            << "TS: round " << r << " attempt " << attempt
            << " failed; draining and retrying";
        (void)run_with_grace(net, [] { return false; }, k_retry_drain_ms);
      }
      admit_rejoiners(ts_net, net, plan, self,
                      [&](net::node_id id) { ts.readmit_dc(id); },
                      state.dropped, rejoin_pending, rejoined_now);
      ts.resume_at_round(r);
      ts.begin_round(plan.counters, plan.privacy);
      if (fault.crash_in(r)) {
        maybe_crash(plan, self, "crash_in_round", r - 1);
      }
      const auto all_ready = [&] { return ts.all_dcs_ready(); };
      const auto all_reported = [&] {
        return ts.reporting_dcs().size() >= ts.data_collectors().size();
      };
      if (!last_attempt) {
        if (!run_with_grace(net, all_ready, phase_grace)) continue;
        ts.start_collection();
        ts.stop_collection();
        if (!run_with_grace(net, all_reported, phase_grace)) continue;
        ts.request_reveal();
        if (!run_with_grace(net, [&] { return ts.results_ready(); },
                            plan.round_deadline_ms)) {
          continue;
        }
        done = true;
        continue;
      }
      // Final (or only) attempt: the classic grace-and-exclude path.
      if (plan.dc_grace_ms > 0) {
        if (!run_with_grace(net, all_ready, plan.dc_grace_ms)) {
          exclude_stragglers(
              [&](net::node_id id) { ts.exclude_dc(id); },
              ts.data_collectors(),
              [&](net::node_id id) { return !ts.ready_dcs().contains(id); },
              state.dropped);
        }
      } else {
        net.run_until(all_ready, plan.round_deadline_ms);
      }
      ts.start_collection();
      // The TS can stop immediately after starting: both control messages
      // ride the same TS->DC channel, and each DC replays its round window
      // inside the start_collection handler (see run_node), so per-channel
      // FIFO guarantees the stop is processed only after the replay
      // finished.
      ts.stop_collection();
      if (plan.dc_grace_ms > 0) {
        if (!run_with_grace(net, all_reported, plan.dc_grace_ms)) {
          // The reveal names exactly the DCs that reported, so dropping the
          // stragglers keeps the blinds cancelling; they are excluded from
          // later rounds too.
          exclude_stragglers(
              [&](net::node_id id) { ts.exclude_dc(id); },
              ts.data_collectors(),
              [&](net::node_id id) { return !ts.reporting_dcs().contains(id); },
              state.dropped);
        }
      } else {
        net.run_until(all_reported, plan.round_deadline_ms);
      }
      if (plan.dc_grace_ms > 0 && ts.reporting_dcs().empty()) {
        // Total DC outage on the grace path (only grace_ms has been spent):
        // nothing to degrade to — fail the round on the full deadline rather
        // than publishing an all-zero tally. The strict path above already
        // waited the whole deadline.
        net.run_until(all_reported, plan.round_deadline_ms);
      }
      ts.request_reveal();
      net.run_until([&] { return ts.results_ready(); }, plan.round_deadline_ms);
      done = ts.results_ready();
    }

    round_record rec;
    rec.round = r;
    rec.retries = attempt - 1;
    rec.dropped = state.dropped;
    for (const auto& n : plan.nodes) {
      if (n.role != node_role::privcount_dc) continue;
      dc_counters c;
      (ts.reporting_dcs().contains(n.id) ? c.reported : c.missed) = 1;
      if (state.dropped.contains(n.id) && !dropped_before.contains(n.id)) {
        c.excluded = 1;
      }
      if (sched_excluded_now.contains(n.id)) c.excluded = 1;
      if (rejoined_now.contains(n.id) || sched_rejoined_now.contains(n.id)) {
        c.rejoined = 1;
      }
      rec.delta[n.id] = c;
    }
    rec.tally = serialize_privcount_tally(ts.results());
    commit_round(state, plan, std::move(rec), "privcount");
    if (fault.crash_after(r)) {
      maybe_crash(plan, self, "crash_after_round", r - 1);
    }
  }

  node_result out;
  out.tally = serialize_multiround_tally(state.tallies);
  finish_round_as_ts(ts_net, net, plan, self, state.dropped, acks);
  write_summary_with_dc_stats(state, plan, "privcount", dc_stats_payloads);
  return out;
}

}  // namespace

node_result run_node(const deployment_plan& plan, net::node_id self) {
  const node_spec& spec = plan.node(self);
  net::tcp_options opts;
  if (plan.dc_grace_ms > 0) {
    // Fault-tolerant deployments give up on unreachable peers on the same
    // timescale they exclude stragglers — otherwise a dead DC's channel
    // would stall the final flush for the full (15 s) connect deadline.
    opts.connect_deadline_ms = static_cast<int>(std::clamp<std::int64_t>(
        2ll * plan.dc_grace_ms, 2'000, 60'000));
  }
  // Durable deployments expect peers to die and come back: a broken
  // channel re-arms on the next send instead of rejecting it forever.
  opts.repair_broken = plan.durable();
  if (plan.durable()) {
    std::filesystem::create_directories(plan.durable_dir);
  }
  net::tcp_net net{plan.endpoints(), opts};
  crypto::deterministic_rng rng = crypto::make_node_rng(plan.rng_seed, self);
  const net::node_id ts_id = plan.tally_server_id();

  switch (spec.role) {
    case node_role::psc_ts:
      return run_psc_ts(net, plan, self);
    case node_role::privcount_ts:
      return run_privcount_ts(net, plan, self);

    case node_role::psc_cp: {
      psc::computation_party cp{self, ts_id, net, rng};
      const fault_spec fault = fault_for(self);
      const std::unique_ptr<util::durable_store> store =
          open_node_store(plan, self);
      std::uint32_t recorded_round =
          store != nullptr ? recovered_round(*store) : 0;
      serve_until_done(net, plan, self, ts_id, [&](const net::message& m) {
        if (m.type == static_cast<std::uint16_t>(psc::msg_type::cp_configure)) {
          const std::uint32_t round = psc::decode_cp_configure(m).round_id;
          // Per-round reseed BEFORE the role consumes the RNG: every
          // incarnation — and the in-process reference — derives the
          // identical stream for (seed, node, round), which is what makes
          // crash re-runs byte-identical.
          rng = crypto::make_node_round_rng(plan.rng_seed, self, round);
          if (fault.crash_in(round)) {
            maybe_crash(plan, self, "crash_in_round", round - 1);
          }
          if (store != nullptr && round > recorded_round) {
            record_node_round(*store, round, plan.checkpoint_every);
            recorded_round = round;
          }
        }
        cp.handle_message(m);
        if (m.type == static_cast<std::uint16_t>(psc::msg_type::decrypt_pass) &&
            fault.crash_after(psc::decode_vector(m).round_id)) {
          maybe_crash(plan, self, "crash_after_round",
                      psc::decode_vector(m).round_id - 1);
        }
      });
      return {};
    }
    case node_role::psc_dc: {
      psc::data_collector dc{self, ts_id, net, rng};
      const fault_spec fault = fault_for(self);
      const core::measurement_schedule sched = round_schedule_of(plan);
      std::optional<workload_cursor> cursor;
      if (is_event_workload(plan)) {
        configure_psc_dc(plan, dc, make_ingest_pool(plan));
        cursor.emplace(plan, dc_index_of(plan, self));
      }
      std::optional<relay::relay_plane> rplane;
      if (plan.workload.kind == workload_kind::relays) {
        const std::size_t dc_index = dc_index_of(plan, self);
        rplane.emplace(
            plan.workload.relay_count / plan.ids_with(node_role::psc_dc).size(),
            plan.sample_prob, relay::sampling_seed_of(plan.rng_seed),
            plan.tally_path + ".pub.d/dc-" + std::to_string(dc_index));
      }
      const std::unique_ptr<util::durable_store> store =
          open_node_store(plan, self);
      std::uint32_t recorded_round =
          store != nullptr ? recovered_round(*store) : 0;
      windowed_replay replay{plan.durable(),
                             rplane.has_value() ? &*rplane : nullptr};
      std::uint32_t configured_round = 0;  // 1-based protocol round id
      bool quit = false;
      std::function<std::string()> final_stats;
      if (cursor.has_value()) {
        final_stats = [&]() {
          return dc_stats_payload(*cursor,
                                  rplane.has_value() ? &*rplane : nullptr);
        };
      }
      serve_until_done(
          net, plan, self, ts_id,
          [&](const net::message& m) {
            if (m.type ==
                static_cast<std::uint16_t>(psc::msg_type::dc_configure)) {
              const std::uint32_t round = psc::decode_dc_configure(m).round_id;
              rng = crypto::make_node_round_rng(plan.rng_seed, self, round);
              if (fault.crash_in(round)) {
                maybe_crash(plan, self, "crash_in_round", round - 1);
              }
              if (store != nullptr && round > recorded_round) {
                record_node_round(*store, round, plan.checkpoint_every);
                recorded_round = round;
              }
            }
            dc.handle_message(m);
            if (m.type ==
                static_cast<std::uint16_t>(psc::msg_type::dc_configure)) {
              configured_round = psc::decode_dc_configure(m).round_id;
              const std::size_t index = configured_round - 1;
              if (fault.delay && fault.delay_round == index) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{fault.delay_ms});
              }
              // Collection phase, run inside the configure handler:
              // per-channel FIFO guarantees the TS's report request is
              // processed only after the full window landed in the
              // oblivious table. The workload is part of the plan, so every
              // process — and the in-process reference round — feeds the
              // identical sequence.
              if (is_event_workload(plan)) {
                const round_window w = round_window_for(plan, sched, index);
                const std::size_t replayed =
                    replay.replay(*cursor, w, index, dc);
                if (configured_round >= plan.schedule_rounds) {
                  cursor->drain();  // trailing gap / feeder shutdown bytes
                }
                log_line{log_level::info}
                    << "PSC DC " << self << " round " << configured_round
                    << ": replayed " << replayed << " events, "
                    << dc.items_inserted() << " items inserted to date, "
                    << cursor->dropped_outside_windows()
                    << " events dropped outside windows";
              } else {
                for (const std::string& item : items_for_dc(plan, self)) {
                  dc.insert_item(item);
                }
              }
            }
            if (m.type ==
                static_cast<std::uint16_t>(psc::msg_type::report_request)) {
              if (fault.exit_after &&
                  configured_round == fault.exit_round + 1) {
                quit = true;  // injected dropout: exit cleanly between rounds
              }
              if (fault.crash_after(configured_round)) {
                maybe_crash(plan, self, "crash_after_round",
                            configured_round - 1);
              }
            }
          },
          [&] { return quit; }, final_stats);
      return {};
    }
    case node_role::privcount_sk: {
      privcount::share_keeper sk{self, ts_id, net};
      const fault_spec fault = fault_for(self);
      const std::unique_ptr<util::durable_store> store =
          open_node_store(plan, self);
      std::uint32_t recorded_round =
          store != nullptr ? recovered_round(*store) : 0;
      serve_until_done(net, plan, self, ts_id, [&](const net::message& m) {
        if (m.type == static_cast<std::uint16_t>(privcount::msg_type::configure)) {
          const std::uint32_t round = privcount::decode_configure(m).round_id;
          if (fault.crash_in(round)) {
            maybe_crash(plan, self, "crash_in_round", round - 1);
          }
          if (store != nullptr && round > recorded_round) {
            record_node_round(*store, round, plan.checkpoint_every);
            recorded_round = round;
          }
        }
        sk.handle_message(m);
        if (m.type == static_cast<std::uint16_t>(privcount::msg_type::sk_reveal) &&
            fault.crash_after(privcount::decode_sk_reveal(m).round_id)) {
          maybe_crash(plan, self, "crash_after_round",
                      privcount::decode_sk_reveal(m).round_id - 1);
        }
      });
      return {};
    }
    case node_role::privcount_dc: {
      privcount::data_collector dc{self, ts_id, net, rng};
      const fault_spec fault = fault_for(self);
      const core::measurement_schedule sched = round_schedule_of(plan);
      std::optional<workload_cursor> cursor;
      if (is_event_workload(plan)) {
        configure_privcount_dc(plan, dc, make_ingest_pool(plan));
        cursor.emplace(plan, dc_index_of(plan, self));
      }
      std::optional<relay::relay_plane> rplane;
      if (plan.workload.kind == workload_kind::relays) {
        const std::size_t dc_index = dc_index_of(plan, self);
        rplane.emplace(plan.workload.relay_count /
                           plan.ids_with(node_role::privcount_dc).size(),
                       plan.sample_prob, relay::sampling_seed_of(plan.rng_seed),
                       plan.tally_path + ".pub.d/dc-" + std::to_string(dc_index));
      }
      const std::unique_ptr<util::durable_store> store =
          open_node_store(plan, self);
      std::uint32_t recorded_round =
          store != nullptr ? recovered_round(*store) : 0;
      windowed_replay replay{plan.durable(),
                             rplane.has_value() ? &*rplane : nullptr};
      std::uint32_t configured_round = 0;  // 1-based protocol round id
      bool quit = false;
      std::function<std::string()> final_stats;
      if (cursor.has_value()) {
        final_stats = [&]() {
          return dc_stats_payload(*cursor,
                                  rplane.has_value() ? &*rplane : nullptr);
        };
      }
      serve_until_done(
          net, plan, self, ts_id,
          [&](const net::message& m) {
            if (m.type ==
                static_cast<std::uint16_t>(privcount::msg_type::configure)) {
              const std::uint32_t round =
                  privcount::decode_configure(m).round_id;
              rng = crypto::make_node_round_rng(plan.rng_seed, self, round);
              if (store != nullptr && round > recorded_round) {
                record_node_round(*store, round, plan.checkpoint_every);
                recorded_round = round;
              }
            }
            if (m.type == static_cast<std::uint16_t>(
                              privcount::msg_type::start_collection) &&
                fault.crash_in(privcount::decode_round_id(m))) {
              maybe_crash(plan, self, "crash_in_round",
                          privcount::decode_round_id(m) - 1);
            }
            dc.handle_message(m);
            if (m.type ==
                static_cast<std::uint16_t>(privcount::msg_type::configure)) {
              configured_round = privcount::decode_configure(m).round_id;
            }
            if (m.type == static_cast<std::uint16_t>(
                              privcount::msg_type::start_collection)) {
              const std::uint32_t round_id = privcount::decode_round_id(m);
              if (round_id != configured_round) return;  // stale control
              const std::size_t index = round_id - 1;
              if (fault.delay && fault.delay_round == index) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{fault.delay_ms});
              }
              if (is_event_workload(plan)) {
                // Collection phase: replay this round's window while the DC
                // is collecting. The TS's stop_collection rides the same
                // channel and is processed only after this handler returns
                // (FIFO), so the report includes every replayed event.
                const round_window w = round_window_for(plan, sched, index);
                const std::size_t replayed =
                    replay.replay(*cursor, w, index, dc);
                if (round_id >= plan.schedule_rounds) cursor->drain();
                log_line{log_level::info}
                    << "PrivCount DC " << self << " round " << round_id
                    << ": replayed " << replayed << " events ("
                    << dc.events_observed() << " counted to date, "
                    << cursor->dropped_outside_windows()
                    << " dropped outside windows)";
              }
            }
            if (m.type == static_cast<std::uint16_t>(
                              privcount::msg_type::stop_collection) &&
                privcount::decode_round_id(m) == configured_round) {
              if (fault.exit_after &&
                  privcount::decode_round_id(m) == fault.exit_round + 1) {
                quit = true;  // report for round k is out; exit between rounds
              }
              if (fault.crash_after(privcount::decode_round_id(m))) {
                maybe_crash(plan, self, "crash_after_round",
                            privcount::decode_round_id(m) - 1);
              }
            }
          },
          [&] { return quit; }, final_stats);
      return {};
    }
  }
  throw invariant_error{"unhandled node role"};
}

std::string serialize_psc_tally(std::uint64_t raw_count, std::uint64_t bins,
                                std::uint64_t total_noise_bits) {
  const psc::cardinality_estimate est =
      psc::estimate_cardinality(raw_count, bins, total_noise_bits);
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol psc\n";
  out << "raw_count " << raw_count << "\n";
  out << "bins " << bins << "\n";
  out << "noise_bits " << total_noise_bits << "\n";
  out << "estimate " << format_double(est.cardinality) << "\n";
  return out.str();
}

std::string serialize_privcount_tally(
    const std::vector<privcount::counter_result>& results) {
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol privcount\n";
  for (const auto& r : results) {
    out << "counter " << r.name << " " << r.value << " " << format_double(r.sigma)
        << "\n";
  }
  return out.str();
}

std::string serialize_multiround_tally(
    const std::vector<std::string>& round_tallies) {
  expects(!round_tallies.empty(), "no round tallies to serialize");
  if (round_tallies.size() == 1) return round_tallies.front();
  std::ostringstream out;
  out << "tormet-tally-multiround-v1\n";
  out << "rounds " << round_tallies.size() << "\n";
  for (std::size_t i = 0; i < round_tallies.size(); ++i) {
    out << "round " << (i + 1) << "\n" << round_tallies[i];
  }
  return out.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    expects(out.good(), "cannot open tally temp file");
    out << content;
    out.flush();
    expects(out.good(), "short write on tally temp file");
  }
  expects(std::rename(tmp.c_str(), path.c_str()) == 0,
          "atomic rename of tally file failed");
}

}  // namespace tormet::cli
