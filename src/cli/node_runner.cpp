#include "src/cli/node_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "src/cli/workload_source.h"
#include "src/crypto/secure_rng.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/share_keeper.h"
#include "src/privcount/tally_server.h"
#include "src/psc/computation_party.h"
#include "src/psc/data_collector.h"
#include "src/psc/estimator.h"
#include "src/psc/tally_server.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::cli {

namespace {

using clock = std::chrono::steady_clock;

/// Per-process fault injection for the multi-round test harness. Reads
/// TORMET_FAULT ("<node_id> exit_after_round <k>" or
/// "<node_id> delay_round <k> <ms>", k 0-based) and applies only when the
/// named node is this process.
struct fault_spec {
  bool exit_after = false;
  std::size_t exit_round = 0;
  bool delay = false;
  std::size_t delay_round = 0;
  int delay_ms = 0;
};

[[nodiscard]] fault_spec fault_for(net::node_id self) {
  fault_spec f;
  const char* env = std::getenv("TORMET_FAULT");
  if (env == nullptr) return f;
  std::istringstream in{env};
  net::node_id id = 0;
  std::string action;
  in >> id >> action;
  if (in.fail() || id != self) return f;
  if (action == "exit_after_round") {
    in >> f.exit_round;
    f.exit_after = !in.fail();
  } else if (action == "delay_round") {
    in >> f.delay_round >> f.delay_ms;
    f.delay = !in.fail();
  }
  return f;
}

/// Transport decorator for the tally-server role: a send to an unreachable
/// peer is logged and dropped instead of failing the whole deployment — a
/// dead DC must not take the TS (and every later round) down with it.
/// Missing peers still surface, as completion-predicate timeouts or as
/// grace-based exclusion.
class tolerant_transport final : public net::transport {
 public:
  explicit tolerant_transport(net::tcp_net& inner) : inner_{inner} {}

  void register_node(net::node_id id, net::message_handler handler) override {
    inner_.register_node(id, std::move(handler));
  }
  void send(net::message msg) override {
    const net::node_id to = msg.to;
    try {
      inner_.send(std::move(msg));
    } catch (const net::transport_error& e) {
      log_line{log_level::warn}
          << "TS: send to node " << to << " failed (" << e.what()
          << "); dropping";
    }
  }
  std::size_t run_until_quiescent() override {
    return inner_.run_until_quiescent();
  }
  void run_until(const std::function<bool()>& done, int deadline_ms) override {
    inner_.run_until(done, deadline_ms);
  }

 private:
  net::tcp_net& inner_;
};

/// Runs the fabric until `done` holds or `grace_ms` elapses, whichever is
/// first; returns done(). The straggler-tolerance primitive of the live
/// pipeline: the caller decides what to do about peers that missed the
/// window.
[[nodiscard]] bool run_with_grace(net::tcp_net& net,
                                  const std::function<bool()>& done,
                                  int grace_ms) {
  const auto grace_end = clock::now() + std::chrono::milliseconds{grace_ms};
  // The predicate flips at the grace, so the outer deadline is pure slack;
  // widen the sum in case a hand-built plan carries an enormous grace.
  const int deadline = static_cast<int>(
      std::min<std::int64_t>(static_cast<std::int64_t>(grace_ms) + 60'000,
                             std::numeric_limits<int>::max()));
  net.run_until([&] { return done() || clock::now() >= grace_end; }, deadline);
  return done();
}

/// The serve deadline for a non-TS node: the whole schedule runs in one
/// process lifetime, and per round the TS may spend a full phase deadline
/// plus up to two grace windows waiting out stragglers before this peer
/// sees the next message — budget all of it, plus one final deadline for
/// the completion handshake.
[[nodiscard]] int serve_deadline_ms(const deployment_plan& plan) {
  const std::int64_t per_round =
      static_cast<std::int64_t>(plan.round_deadline_ms) +
      2 * static_cast<std::int64_t>(std::max(0, plan.dc_grace_ms));
  const std::int64_t total =
      per_round * std::max<std::uint32_t>(1, plan.schedule_rounds) +
      plan.round_deadline_ms;
  return static_cast<int>(
      std::min<std::int64_t>(total, std::numeric_limits<int>::max()));
}

/// Excludes every current DC that `still_missing` reports as absent,
/// keeping at least one: with the whole DC population gone there is no
/// degraded round to salvage — the phase deadline then fails the round
/// with a clear timeout instead of an exclusion crash.
void exclude_stragglers(const std::function<void(net::node_id)>& exclude,
                        std::vector<net::node_id> current,  // copy: exclude()
                                                            // mutates the live
                                                            // DC list
                        const std::function<bool(net::node_id)>& still_missing,
                        std::set<net::node_id>& dropped) {
  std::size_t remaining = current.size();
  for (const auto id : current) {
    if (!still_missing(id)) continue;
    if (remaining <= 1) {
      log_line{log_level::warn}
          << "TS: every remaining DC missed the grace; keeping DC " << id
          << " and waiting out the round deadline";
      break;
    }
    exclude(id);
    dropped.insert(id);
    --remaining;
  }
}

/// Sends ROUND_DONE to every peer and blocks until each *surviving* peer
/// replied ROUND_ACK (peers in `dropped` were excluded mid-deployment; an
/// ack from them anyway is harmless).
void finish_round_as_ts(net::transport& out, net::tcp_net& net,
                        const deployment_plan& plan, net::node_id self,
                        const std::set<net::node_id>& dropped,
                        std::size_t& acks) {
  std::size_t expected = 0;
  for (const auto& n : plan.nodes) {
    if (n.id == self) continue;
    if (!dropped.contains(n.id)) ++expected;
    out.send(net::message{self, n.id,
                          static_cast<std::uint16_t>(ctl_msg::round_done),
                          {}});
  }
  net.run_until([&] { return acks >= expected; }, plan.round_deadline_ms);
  net.flush_sends();
}

/// Serves a non-TS role until the TS's ROUND_DONE arrives (or `quit_early`
/// fires — the fault-injection exit), then acks and flushes. `handle`
/// processes protocol messages.
void serve_until_done(net::tcp_net& net, const deployment_plan& plan,
                      net::node_id self, net::node_id ts_id,
                      const std::function<void(const net::message&)>& handle,
                      const std::function<bool()>& quit_early = nullptr) {
  bool done = false;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_done)) {
      try {
        net.send(net::message{self, ts_id,
                              static_cast<std::uint16_t>(ctl_msg::round_ack),
                              {}});
      } catch (const net::transport_error&) {
        // A fault-tolerant TS that already excluded this node does not wait
        // for the ack; acking into a closed channel must not fail the node.
      }
      done = true;
      return;
    }
    handle(m);
  });
  net.run_until(
      [&] { return done || (quit_early != nullptr && quit_early()); },
      serve_deadline_ms(plan));
  net.flush_sends();
}

[[nodiscard]] node_result run_psc_ts(net::tcp_net& net,
                                     const deployment_plan& plan,
                                     net::node_id self) {
  tolerant_transport ts_net{net};
  psc::tally_server ts{self, ts_net, plan.ids_with(node_role::psc_dc),
                       plan.ids_with(node_role::psc_cp)};
  std::size_t acks = 0;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    ts.handle_message(m);
  });

  const std::uint32_t rounds = std::max<std::uint32_t>(1, plan.schedule_rounds);
  std::set<net::node_id> dropped;
  std::vector<std::string> tallies;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    ts.begin_round(plan.round);
    net.run_until([&] { return ts.setup_complete(); }, plan.round_deadline_ms);
    // DCs replay their round window (or insert their plan-derived items)
    // immediately after handling dc_configure; per-channel FIFO guarantees
    // the report request below is processed only after that.
    ts.request_reports();
    if (plan.dc_grace_ms > 0) {
      const auto all_reported = [&] {
        return ts.reporting_dcs().size() >= ts.data_collectors().size();
      };
      if (!run_with_grace(net, all_reported, plan.dc_grace_ms)) {
        // Stragglers past the grace are dropped from the deployment; the
        // mix starts on the tables that made it (the union just excludes
        // the dead DCs' observations).
        exclude_stragglers(
            [&](net::node_id id) { ts.exclude_dc(id); }, ts.data_collectors(),
            [&](net::node_id id) { return !ts.reporting_dcs().contains(id); },
            dropped);
        if (!ts.reporting_dcs().empty()) ts.force_mixing();
      }
    }
    net.run_until([&] { return ts.result_ready(); }, plan.round_deadline_ms);
    tallies.push_back(serialize_psc_tally(ts.raw_count(), ts.params().bins,
                                          ts.total_noise_bits()));
    // Rewrite after every round so a watcher sees the schedule progress.
    write_file_atomic(plan.tally_path, serialize_multiround_tally(tallies));
  }

  node_result out;
  out.tally = serialize_multiround_tally(tallies);
  finish_round_as_ts(ts_net, net, plan, self, dropped, acks);
  return out;
}

[[nodiscard]] node_result run_privcount_ts(net::tcp_net& net,
                                           const deployment_plan& plan,
                                           net::node_id self) {
  tolerant_transport ts_net{net};
  privcount::tally_server ts{self, ts_net,
                             plan.ids_with(node_role::privcount_dc),
                             plan.ids_with(node_role::privcount_sk)};
  ts.set_noise_enabled(plan.privcount_noise_enabled);
  std::size_t acks = 0;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    ts.handle_message(m);
  });

  const std::uint32_t rounds = std::max<std::uint32_t>(1, plan.schedule_rounds);
  std::set<net::node_id> dropped;
  std::vector<std::string> tallies;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    ts.begin_round(plan.counters, plan.privacy);
    const auto all_ready = [&] { return ts.all_dcs_ready(); };
    if (plan.dc_grace_ms > 0) {
      if (!run_with_grace(net, all_ready, plan.dc_grace_ms)) {
        exclude_stragglers(
            [&](net::node_id id) { ts.exclude_dc(id); }, ts.data_collectors(),
            [&](net::node_id id) { return !ts.ready_dcs().contains(id); },
            dropped);
      }
    } else {
      net.run_until(all_ready, plan.round_deadline_ms);
    }
    ts.start_collection();
    // The TS can stop immediately after starting: both control messages
    // ride the same TS->DC channel, and each DC replays its round window
    // inside the start_collection handler (see run_node), so per-channel
    // FIFO guarantees the stop is processed only after the replay finished.
    ts.stop_collection();
    const auto all_reported = [&] {
      return ts.reporting_dcs().size() >= ts.data_collectors().size();
    };
    if (plan.dc_grace_ms > 0) {
      if (!run_with_grace(net, all_reported, plan.dc_grace_ms)) {
        // The reveal names exactly the DCs that reported, so dropping the
        // stragglers keeps the blinds cancelling; they are excluded from
        // later rounds too.
        exclude_stragglers(
            [&](net::node_id id) { ts.exclude_dc(id); }, ts.data_collectors(),
            [&](net::node_id id) { return !ts.reporting_dcs().contains(id); },
            dropped);
      }
    } else {
      net.run_until(all_reported, plan.round_deadline_ms);
    }
    if (plan.dc_grace_ms > 0 && ts.reporting_dcs().empty()) {
      // Total DC outage on the grace path (only grace_ms has been spent):
      // nothing to degrade to — fail the round on the full deadline rather
      // than publishing an all-zero tally. The strict path above already
      // waited the whole deadline.
      net.run_until(all_reported, plan.round_deadline_ms);
    }
    ts.request_reveal();
    net.run_until([&] { return ts.results_ready(); }, plan.round_deadline_ms);
    tallies.push_back(serialize_privcount_tally(ts.results()));
    write_file_atomic(plan.tally_path, serialize_multiround_tally(tallies));
  }

  node_result out;
  out.tally = serialize_multiround_tally(tallies);
  finish_round_as_ts(ts_net, net, plan, self, dropped, acks);
  return out;
}

}  // namespace

node_result run_node(const deployment_plan& plan, net::node_id self) {
  const node_spec& spec = plan.node(self);
  net::tcp_options opts;
  if (plan.dc_grace_ms > 0) {
    // Fault-tolerant deployments give up on unreachable peers on the same
    // timescale they exclude stragglers — otherwise a dead DC's channel
    // would stall the final flush for the full (15 s) connect deadline.
    opts.connect_deadline_ms = static_cast<int>(std::clamp<std::int64_t>(
        2ll * plan.dc_grace_ms, 2'000, 60'000));
  }
  net::tcp_net net{plan.endpoints(), opts};
  crypto::deterministic_rng rng = crypto::make_node_rng(plan.rng_seed, self);
  const net::node_id ts_id = plan.tally_server_id();

  switch (spec.role) {
    case node_role::psc_ts:
      return run_psc_ts(net, plan, self);
    case node_role::privcount_ts:
      return run_privcount_ts(net, plan, self);

    case node_role::psc_cp: {
      psc::computation_party cp{self, ts_id, net, rng};
      serve_until_done(net, plan, self, ts_id,
                       [&](const net::message& m) { cp.handle_message(m); });
      return {};
    }
    case node_role::psc_dc: {
      psc::data_collector dc{self, ts_id, net, rng};
      const fault_spec fault = fault_for(self);
      const core::measurement_schedule sched = round_schedule_of(plan);
      std::optional<workload_cursor> cursor;
      if (is_event_workload(plan)) {
        configure_psc_dc(plan, dc);
        cursor.emplace(plan, dc_index_of(plan, self));
      }
      std::uint32_t configured_round = 0;  // 1-based protocol round id
      bool quit = false;
      serve_until_done(
          net, plan, self, ts_id,
          [&](const net::message& m) {
            dc.handle_message(m);
            if (m.type ==
                static_cast<std::uint16_t>(psc::msg_type::dc_configure)) {
              configured_round = psc::decode_dc_configure(m).round_id;
              const std::size_t index = configured_round - 1;
              if (fault.delay && fault.delay_round == index) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{fault.delay_ms});
              }
              // Collection phase, run inside the configure handler:
              // per-channel FIFO guarantees the TS's report request is
              // processed only after the full window landed in the
              // oblivious table. The workload is part of the plan, so every
              // process — and the in-process reference round — feeds the
              // identical sequence.
              if (is_event_workload(plan)) {
                const round_window w = round_window_for(plan, sched, index);
                const std::size_t replayed = cursor->stream_window(
                    w.start, w.end,
                    [&dc](const tor::event& ev) { dc.observe(ev); });
                if (configured_round >= plan.schedule_rounds) {
                  cursor->drain();  // trailing gap / feeder shutdown bytes
                }
                log_line{log_level::info}
                    << "PSC DC " << self << " round " << configured_round
                    << ": replayed " << replayed << " events, "
                    << dc.items_inserted() << " items inserted to date, "
                    << cursor->dropped_outside_windows()
                    << " events dropped outside windows";
              } else {
                for (const std::string& item : items_for_dc(plan, self)) {
                  dc.insert_item(item);
                }
              }
            }
            if (m.type ==
                    static_cast<std::uint16_t>(psc::msg_type::report_request) &&
                fault.exit_after && configured_round == fault.exit_round + 1) {
              quit = true;  // injected dropout: exit cleanly between rounds
            }
          },
          [&] { return quit; });
      return {};
    }
    case node_role::privcount_sk: {
      privcount::share_keeper sk{self, ts_id, net};
      serve_until_done(net, plan, self, ts_id,
                       [&](const net::message& m) { sk.handle_message(m); });
      return {};
    }
    case node_role::privcount_dc: {
      privcount::data_collector dc{self, ts_id, net, rng};
      const fault_spec fault = fault_for(self);
      const core::measurement_schedule sched = round_schedule_of(plan);
      std::optional<workload_cursor> cursor;
      if (is_event_workload(plan)) {
        configure_privcount_dc(plan, dc);
        cursor.emplace(plan, dc_index_of(plan, self));
      }
      bool quit = false;
      serve_until_done(
          net, plan, self, ts_id,
          [&](const net::message& m) {
            dc.handle_message(m);
            if (m.type == static_cast<std::uint16_t>(
                              privcount::msg_type::start_collection)) {
              const std::uint32_t round_id = privcount::decode_round_id(m);
              const std::size_t index = round_id - 1;
              if (fault.delay && fault.delay_round == index) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{fault.delay_ms});
              }
              if (is_event_workload(plan)) {
                // Collection phase: replay this round's window while the DC
                // is collecting. The TS's stop_collection rides the same
                // channel and is processed only after this handler returns
                // (FIFO), so the report includes every replayed event.
                const round_window w = round_window_for(plan, sched, index);
                const std::size_t replayed = cursor->stream_window(
                    w.start, w.end,
                    [&dc](const tor::event& ev) { dc.observe(ev); });
                if (round_id >= plan.schedule_rounds) cursor->drain();
                log_line{log_level::info}
                    << "PrivCount DC " << self << " round " << round_id
                    << ": replayed " << replayed << " events ("
                    << dc.events_observed() << " counted to date, "
                    << cursor->dropped_outside_windows()
                    << " dropped outside windows)";
              }
            }
            if (m.type == static_cast<std::uint16_t>(
                              privcount::msg_type::stop_collection) &&
                fault.exit_after &&
                privcount::decode_round_id(m) == fault.exit_round + 1) {
              quit = true;  // report for round k is out; exit between rounds
            }
          },
          [&] { return quit; });
      return {};
    }
  }
  throw invariant_error{"unhandled node role"};
}

std::string serialize_psc_tally(std::uint64_t raw_count, std::uint64_t bins,
                                std::uint64_t total_noise_bits) {
  const psc::cardinality_estimate est =
      psc::estimate_cardinality(raw_count, bins, total_noise_bits);
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol psc\n";
  out << "raw_count " << raw_count << "\n";
  out << "bins " << bins << "\n";
  out << "noise_bits " << total_noise_bits << "\n";
  out << "estimate " << format_double(est.cardinality) << "\n";
  return out.str();
}

std::string serialize_privcount_tally(
    const std::vector<privcount::counter_result>& results) {
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol privcount\n";
  for (const auto& r : results) {
    out << "counter " << r.name << " " << r.value << " " << format_double(r.sigma)
        << "\n";
  }
  return out.str();
}

std::string serialize_multiround_tally(
    const std::vector<std::string>& round_tallies) {
  expects(!round_tallies.empty(), "no round tallies to serialize");
  if (round_tallies.size() == 1) return round_tallies.front();
  std::ostringstream out;
  out << "tormet-tally-multiround-v1\n";
  out << "rounds " << round_tallies.size() << "\n";
  for (std::size_t i = 0; i < round_tallies.size(); ++i) {
    out << "round " << (i + 1) << "\n" << round_tallies[i];
  }
  return out.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    expects(out.good(), "cannot open tally temp file");
    out << content;
    out.flush();
    expects(out.good(), "short write on tally temp file");
  }
  expects(std::rename(tmp.c_str(), path.c_str()) == 0,
          "atomic rename of tally file failed");
}

}  // namespace tormet::cli
