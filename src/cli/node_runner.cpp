#include "src/cli/node_runner.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/cli/workload_source.h"
#include "src/crypto/secure_rng.h"
#include "src/privcount/data_collector.h"
#include "src/privcount/share_keeper.h"
#include "src/privcount/tally_server.h"
#include "src/psc/computation_party.h"
#include "src/psc/data_collector.h"
#include "src/psc/estimator.h"
#include "src/psc/tally_server.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::cli {

namespace {

/// Sends ROUND_DONE to every peer and blocks until each replied ROUND_ACK.
void finish_round_as_ts(net::tcp_net& net, const deployment_plan& plan,
                        net::node_id self, std::size_t& acks) {
  std::size_t expected = 0;
  for (const auto& n : plan.nodes) {
    if (n.id == self) continue;
    ++expected;
    net.send(net::message{self, n.id,
                          static_cast<std::uint16_t>(ctl_msg::round_done),
                          {}});
  }
  net.run_until([&] { return acks >= expected; }, plan.round_deadline_ms);
  net.flush_sends();
}

/// Serves a non-TS role until the TS's ROUND_DONE arrives, then acks and
/// flushes. `handle` processes protocol messages.
void serve_until_done(net::tcp_net& net, const deployment_plan& plan,
                      net::node_id self, net::node_id ts_id,
                      const std::function<void(const net::message&)>& handle) {
  bool done = false;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_done)) {
      net.send(net::message{self, ts_id,
                            static_cast<std::uint16_t>(ctl_msg::round_ack),
                            {}});
      done = true;
      return;
    }
    handle(m);
  });
  net.run_until([&] { return done; }, plan.round_deadline_ms);
  net.flush_sends();
}

[[nodiscard]] node_result run_psc_ts(net::tcp_net& net,
                                     const deployment_plan& plan,
                                     net::node_id self) {
  psc::tally_server ts{self, net, plan.ids_with(node_role::psc_dc),
                       plan.ids_with(node_role::psc_cp)};
  std::size_t acks = 0;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    ts.handle_message(m);
  });

  ts.begin_round(plan.round);
  net.run_until([&] { return ts.setup_complete(); }, plan.round_deadline_ms);
  // DCs insert their plan-derived items immediately after handling
  // dc_configure; per-channel FIFO guarantees the report request below is
  // processed only after that.
  ts.request_reports();
  net.run_until([&] { return ts.result_ready(); }, plan.round_deadline_ms);

  node_result out;
  out.tally =
      serialize_psc_tally(ts.raw_count(), ts.params().bins, ts.total_noise_bits());
  write_file_atomic(plan.tally_path, out.tally);
  finish_round_as_ts(net, plan, self, acks);
  return out;
}

[[nodiscard]] node_result run_privcount_ts(net::tcp_net& net,
                                           const deployment_plan& plan,
                                           net::node_id self) {
  const std::vector<net::node_id> dc_ids = plan.ids_with(node_role::privcount_dc);
  privcount::tally_server ts{self, net, dc_ids,
                             plan.ids_with(node_role::privcount_sk)};
  ts.set_noise_enabled(plan.privcount_noise_enabled);
  std::size_t acks = 0;
  net.register_node(self, [&](const net::message& m) {
    if (m.type == static_cast<std::uint16_t>(ctl_msg::round_ack)) {
      ++acks;
      return;
    }
    ts.handle_message(m);
  });

  ts.begin_round(plan.counters, plan.privacy);
  net.run_until([&] { return ts.all_dcs_ready(); }, plan.round_deadline_ms);
  ts.start_collection();
  // The TS can stop immediately after starting: both control messages ride
  // the same TS->DC channel, and each DC replays its entire event workload
  // inside the start_collection handler (see run_node), so per-channel FIFO
  // guarantees the stop is processed only after the replay finished.
  // Synthetic privcount rounds measure a zero workload (noise + blinding
  // only), which the per-node RNG derivation makes deterministic.
  ts.stop_collection();
  net.run_until([&] { return ts.reporting_dcs().size() == dc_ids.size(); },
                plan.round_deadline_ms);
  ts.request_reveal();
  net.run_until([&] { return ts.results_ready(); }, plan.round_deadline_ms);

  node_result out;
  out.tally = serialize_privcount_tally(ts.results());
  write_file_atomic(plan.tally_path, out.tally);
  finish_round_as_ts(net, plan, self, acks);
  return out;
}

}  // namespace

node_result run_node(const deployment_plan& plan, net::node_id self) {
  const node_spec& spec = plan.node(self);
  net::tcp_net net{plan.endpoints()};
  crypto::deterministic_rng rng = crypto::make_node_rng(plan.rng_seed, self);
  const net::node_id ts_id = plan.tally_server_id();

  switch (spec.role) {
    case node_role::psc_ts:
      return run_psc_ts(net, plan, self);
    case node_role::privcount_ts:
      return run_privcount_ts(net, plan, self);

    case node_role::psc_cp: {
      psc::computation_party cp{self, ts_id, net, rng};
      serve_until_done(net, plan, self, ts_id,
                       [&](const net::message& m) { cp.handle_message(m); });
      return {};
    }
    case node_role::psc_dc: {
      psc::data_collector dc{self, ts_id, net, rng};
      if (is_event_workload(plan)) configure_psc_dc(plan, dc);
      serve_until_done(net, plan, self, ts_id, [&](const net::message& m) {
        dc.handle_message(m);
        if (m.type == static_cast<std::uint16_t>(psc::msg_type::dc_configure)) {
          // Collection phase, run inside the configure handler: per-channel
          // FIFO guarantees the TS's report request is processed only after
          // the full workload landed in the oblivious table. The workload
          // is part of the plan (synthetic items or an event stream), so
          // every process — and the in-process reference round — feeds the
          // identical sequence.
          if (is_event_workload(plan)) {
            const std::size_t replayed =
                stream_dc_workload(plan, dc_index_of(plan, self),
                                   [&dc](const tor::event& ev) { dc.observe(ev); });
            log_line{log_level::info}
                << "PSC DC " << self << ": replayed " << replayed
                << " events, inserted " << dc.items_inserted() << " items";
          } else {
            for (const std::string& item : items_for_dc(plan, self)) {
              dc.insert_item(item);
            }
          }
        }
      });
      return {};
    }
    case node_role::privcount_sk: {
      privcount::share_keeper sk{self, ts_id, net};
      serve_until_done(net, plan, self, ts_id,
                       [&](const net::message& m) { sk.handle_message(m); });
      return {};
    }
    case node_role::privcount_dc: {
      privcount::data_collector dc{self, ts_id, net, rng};
      if (is_event_workload(plan)) configure_privcount_dc(plan, dc);
      serve_until_done(net, plan, self, ts_id, [&](const net::message& m) {
        dc.handle_message(m);
        if (is_event_workload(plan) &&
            m.type ==
                static_cast<std::uint16_t>(privcount::msg_type::start_collection)) {
          // Collection phase: replay this DC's event slice while the DC is
          // collecting. The TS's stop_collection rides the same channel and
          // is processed only after this handler returns (FIFO), so the
          // report includes every replayed event.
          const std::size_t replayed =
              stream_dc_workload(plan, dc_index_of(plan, self),
                                 [&dc](const tor::event& ev) { dc.observe(ev); });
          log_line{log_level::info}
              << "PrivCount DC " << self << ": replayed " << replayed
              << " events (" << dc.events_observed() << " counted)";
        }
      });
      return {};
    }
  }
  throw invariant_error{"unhandled node role"};
}

std::string serialize_psc_tally(std::uint64_t raw_count, std::uint64_t bins,
                                std::uint64_t total_noise_bits) {
  const psc::cardinality_estimate est =
      psc::estimate_cardinality(raw_count, bins, total_noise_bits);
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol psc\n";
  out << "raw_count " << raw_count << "\n";
  out << "bins " << bins << "\n";
  out << "noise_bits " << total_noise_bits << "\n";
  out << "estimate " << format_double(est.cardinality) << "\n";
  return out.str();
}

std::string serialize_privcount_tally(
    const std::vector<privcount::counter_result>& results) {
  std::ostringstream out;
  out << "tormet-tally-v1\n";
  out << "protocol privcount\n";
  for (const auto& r : results) {
    out << "counter " << r.name << " " << r.value << " " << format_double(r.sigma)
        << "\n";
  }
  return out.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc | std::ios::binary};
    expects(out.good(), "cannot open tally temp file");
    out << content;
    out.flush();
    expects(out.good(), "short write on tally temp file");
  }
  expects(std::rename(tmp.c_str(), path.c_str()) == 0,
          "atomic rename of tally file failed");
}

}  // namespace tormet::cli
