// Contract-check helpers in the spirit of the Core Guidelines' Expects/Ensures
// (I.6, I.8). Violations throw, so callers can test failure paths, and a
// release build keeps its invariants instead of silently corrupting state.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace tormet {

/// Thrown when a precondition (argument contract) is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a postcondition or internal invariant is violated.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[nodiscard]] inline std::string locate(const char* what,
                                        const char* expr,
                                        const std::source_location& loc) {
  std::string msg{what};
  msg += ": ";
  msg += expr;
  msg += " at ";
  msg += loc.file_name();
  msg += ':';
  msg += std::to_string(loc.line());
  return msg;
}
}  // namespace detail

/// Precondition: throws precondition_error when `cond` is false.
inline void expects(bool cond,
                    const char* expr,
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) throw precondition_error{detail::locate("precondition failed", expr, loc)};
}

/// Postcondition/invariant: throws invariant_error when `cond` is false.
inline void ensures(bool cond,
                    const char* expr,
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) throw invariant_error{detail::locate("invariant failed", expr, loc)};
}

}  // namespace tormet

// Convenience macros that capture the failing expression text. Kept minimal
// per ES.30 (only used where a function cannot capture the expression text).
#define TORMET_EXPECTS(cond) ::tormet::expects((cond), #cond)
#define TORMET_ENSURES(cond) ::tormet::ensures((cond), #cond)
