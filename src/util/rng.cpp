#include "src/util/rng.h"

#include <cmath>
#include <numbers>

namespace tormet {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over a label, for stream forking.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

rng rng::fork(std::string_view label) noexcept {
  // Mix a label hash with fresh output so forked streams are decorrelated
  // from the parent and from each other.
  return rng{next() ^ fnv1a(label)};
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

bool rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double rng::exponential(double lambda) noexcept {
  if (lambda <= 0.0) return 0.0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = mean + std::sqrt(mean) * normal() + 0.5;
    return draw < 0.0 ? 0 : static_cast<std::uint64_t>(draw);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace tormet
