// Simulation time. The Tor model advances in whole seconds over measurement
// windows (the paper measures in 24 h rounds); a strong type prevents mixing
// tick counts with other integers.
#pragma once

#include <compare>
#include <cstdint>

namespace tormet {

/// A point in simulated time, in seconds since the start of the experiment.
struct sim_time {
  std::int64_t seconds = 0;

  constexpr auto operator<=>(const sim_time&) const = default;

  constexpr sim_time operator+(std::int64_t delta) const noexcept {
    return sim_time{seconds + delta};
  }
  constexpr sim_time& operator+=(std::int64_t delta) noexcept {
    seconds += delta;
    return *this;
  }
  constexpr std::int64_t operator-(const sim_time& other) const noexcept {
    return seconds - other.seconds;
  }
};

inline constexpr std::int64_t k_seconds_per_hour = 3600;
inline constexpr std::int64_t k_seconds_per_day = 24 * k_seconds_per_hour;

/// The paper's standard measurement round length (§3.1): 24 hours.
inline constexpr std::int64_t k_measurement_round_seconds = k_seconds_per_day;

}  // namespace tormet
