// Minimal leveled logger. tormet is a library, so logging defaults to quiet
// (warnings and errors only); examples and benches can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace tormet {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide minimum level that will be emitted. Not thread-synchronised
/// beyond the atomicity of the underlying int; set it before spawning work.
void set_log_level(log_level level) noexcept;
[[nodiscard]] log_level get_log_level() noexcept;

namespace detail {
void emit(log_level level, const std::string& message);
}

/// Stream-style log statement: log_line{log_level::info} << "x=" << x;
/// The message is emitted when the temporary is destroyed.
class log_line {
 public:
  explicit log_line(log_level level) noexcept : level_{level} {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  ~log_line() {
    if (level_ >= get_log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  log_line& operator<<(const T& value) {
    if (level_ >= get_log_level()) stream_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream stream_;
};

}  // namespace tormet
