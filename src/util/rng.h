// Deterministic, seedable random number generation for simulation and
// statistics. Every stochastic component in tormet takes an rng& so that
// experiments and tests are exactly reproducible from a seed. Cryptographic
// randomness (key generation, blinding) lives in src/crypto/rng instead.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace tormet {

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 256-bit state.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>
/// distributions where convenient.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any 64-bit seed produces a
  /// well-mixed state (including seed 0).
  explicit rng(std::uint64_t seed = 0x5eed'dead'beef'cafeULL) noexcept;

  /// Derives an independent stream from this rng and a label, so subsystems
  /// can be given decorrelated generators from one experiment seed.
  [[nodiscard]] rng fork(std::string_view label) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next 64 uniform random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be nonzero. Unbiased
  /// (rejection sampling on the top of the range).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Standard normal via Box–Muller (cached second value).
  double normal() noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Poisson(mean). Uses Knuth for small means and normal approximation for
  /// large means (mean > 64); adequate for workload generation.
  std::uint64_t poisson(double mean) noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tormet
