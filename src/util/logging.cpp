#include "src/util/logging.h"

#include <atomic>
#include <cstdio>

namespace tormet {

namespace {
std::atomic<int> g_level{static_cast<int>(log_level::warn)};

[[nodiscard]] const char* level_name(log_level level) noexcept {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

log_level get_log_level() noexcept {
  return static_cast<log_level>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void emit(log_level level, const std::string& message) {
  std::fprintf(stderr, "[tormet %-5s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace tormet
