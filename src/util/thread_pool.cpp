#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "src/util/check.h"

namespace tormet::util {

// Per-parallel_for bookkeeping shared by all of its chunk tasks.
struct thread_pool::batch_state {
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> remaining{0};
  std::size_t n = 0;
  std::size_t grain = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::mutex done_mutex;
  std::condition_variable done;
  std::exception_ptr error;

  // Claims and runs chunks until none are left. Returns when the claimer
  // runs out of work (other chunks may still be running elsewhere).
  void drain() noexcept {
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      const std::size_t begin = chunk * grain;
      if (begin >= n) return;
      const std::size_t end = std::min(begin + grain, n);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock{done_mutex};
        if (!error) error = std::current_exception();
      }
      std::size_t left;
      {
        std::lock_guard<std::mutex> lock{done_mutex};
        left = --remaining;
      }
      if (left == 0) done.notify_all();
    }
  }
};

thread_pool::thread_pool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

void thread_pool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  expects(grain > 0, "parallel_for grain must be positive");
  if (n == 0) return;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1 || workers_.empty()) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<batch_state>();
  state->n = n;
  state->grain = grain;
  state->fn = &fn;
  state->remaining.store(chunks);

  // Hand each worker one "drain" task; they pull chunks off the shared
  // counter until the batch is exhausted. The caller drains too, so the
  // pool makes progress even under contention from other batches.
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  {
    std::lock_guard<std::mutex> lock{mutex_};
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push_back([state] { state->drain(); });
    }
  }
  work_ready_.notify_all();
  state->drain();

  std::unique_lock<std::mutex> lock{state->done_mutex};
  state->done.wait(lock, [&] { return state->remaining.load() == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace tormet::util
