#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tormet {

namespace {
void pad_to(std::string& s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
}
}  // namespace

std::string repro_table::render() const {
  const std::vector<std::string> headers{"statistic", "paper", "measured",
                                         "95% CI", "note"};
  std::vector<std::size_t> widths(5);
  for (std::size_t i = 0; i < 5; ++i) widths[i] = headers[i].size();
  for (const auto& r : rows_) {
    widths[0] = std::max(widths[0], r.statistic.size());
    widths[1] = std::max(widths[1], r.paper_value.size());
    widths[2] = std::max(widths[2], r.measured_value.size());
    widths[3] = std::max(widths[3], r.ci.size());
    widths[4] = std::max(widths[4], r.note.size());
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::string& a, const std::string& b,
                      const std::string& c, const std::string& d,
                      const std::string& e) {
    std::string col0 = a, col1 = b, col2 = c, col3 = d, col4 = e;
    pad_to(col0, widths[0]);
    pad_to(col1, widths[1]);
    pad_to(col2, widths[2]);
    pad_to(col3, widths[3]);
    pad_to(col4, widths[4]);
    out << "  " << col0 << "  " << col1 << "  " << col2 << "  " << col3 << "  "
        << col4 << '\n';
  };
  emit_row(headers[0], headers[1], headers[2], headers[3], headers[4]);
  std::string rule(widths[0] + widths[1] + widths[2] + widths[3] + widths[4] + 10,
                   '-');
  out << "  " << rule << '\n';
  for (const auto& r : rows_) {
    emit_row(r.statistic, r.paper_value, r.measured_value, r.ci, r.note);
  }
  return out.str();
}

void repro_table::print() const {
  const std::string rendered = render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fputc('\n', stdout);
}

std::string format_sig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_count(double value) {
  const double magnitude = std::fabs(value);
  char buf[64];
  if (magnitude >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3g billion", value / 1e9);
  } else if (magnitude >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3g million", value / 1e6);
  } else if (magnitude >= 1e4) {
    std::snprintf(buf, sizeof buf, "%.1f thousand", value / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %%", fraction * 100.0);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3g %s", v, units[unit]);
  return buf;
}

}  // namespace tormet
