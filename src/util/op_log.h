// Write-ahead op-log + periodic checkpoint for crash-recoverable rounds
// (the PRISM OpLog shape): a bounded append-only file of CRC-framed records
// beside an atomically-replaced checkpoint snapshot. A process appends one
// record per durable state transition; on restart it replays
// checkpoint + suffix records to its pre-crash state and resumes the
// schedule. Payloads are opaque bytes — the protocol layer owns their
// encoding; this module owns framing, integrity, and atomicity.
//
// On-disk layout under the store directory:
//
//   oplog       "tormet-oplog-v1\n" then records of [u32 len][u32 crc][payload]
//   checkpoint  "tormet-ckpt-v1\n" then one [u32 len][u32 crc][payload] record
//
// A checkpoint write is tmp-file + rename (atomic on POSIX) and truncates
// the op-log back to its header, which is what keeps the log bounded.
// Loading is strict: any truncated, oversized, or CRC-mismatched input
// throws op_log_error — corrupt durable state must fail loudly, never
// silently misrecover.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace tormet::util {

/// Structured recovery failure: the op-log or checkpoint on disk is
/// truncated, corrupted, or otherwise unreadable.
class op_log_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`. Exposed so tests
/// can frame valid records and fuzzers can target the checksum.
[[nodiscard]] std::uint32_t crc32(byte_view data);

/// The recovered durable state: the last checkpoint snapshot (empty if no
/// checkpoint was ever written) plus every op-log record appended after it,
/// in append order.
struct durable_state {
  bool has_checkpoint = false;
  byte_buffer checkpoint;
  std::vector<byte_buffer> records;
};

class durable_store {
 public:
  /// Opens (creating the directory if needed) and replays the store at
  /// `dir`. Throws op_log_error on any malformed on-disk state.
  explicit durable_store(std::string dir);
  ~durable_store();
  durable_store(const durable_store&) = delete;
  durable_store& operator=(const durable_store&) = delete;

  /// State recovered at open time (checkpoint + replayed records).
  [[nodiscard]] const durable_state& recovered() const noexcept {
    return recovered_;
  }

  /// Appends one CRC-framed record and flushes it to the OS, so the record
  /// survives a process crash (_Exit / SIGKILL).
  void append(byte_view record);

  /// Atomically replaces the checkpoint with `snapshot` and truncates the
  /// op-log back to its header.
  void write_checkpoint(byte_view snapshot);

  /// Records appended since the last checkpoint (replayed + live).
  [[nodiscard]] std::size_t log_records() const noexcept {
    return log_records_;
  }

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  void open_log_for_append(bool truncate);

  std::string dir_;
  durable_state recovered_;
  std::size_t log_records_ = 0;
  int log_fd_ = -1;
};

}  // namespace tormet::util
