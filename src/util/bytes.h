// Byte-buffer alias plus hex encoding helpers used across the crypto and
// wire layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tormet {

using byte_buffer = std::vector<std::uint8_t>;
using byte_view = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` ("" for empty input).
[[nodiscard]] std::string to_hex(byte_view data);

/// Decodes a hex string (upper or lower case). Throws precondition_error on
/// odd length or non-hex characters.
[[nodiscard]] byte_buffer from_hex(std::string_view hex);

/// View over the bytes of a string (no copy).
[[nodiscard]] inline byte_view as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copies a byte view into a std::string (for map keys, diagnostics).
[[nodiscard]] inline std::string to_string(byte_view b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace tormet
