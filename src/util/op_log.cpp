#include "src/util/op_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "src/util/logging.h"

namespace tormet::util {
namespace {

constexpr std::string_view k_log_magic = "tormet-oplog-v1\n";
constexpr std::string_view k_ckpt_magic = "tormet-ckpt-v1\n";
// A record far larger than any protocol snapshot is corruption, not data;
// bounding it keeps a flipped length byte from allocating gigabytes.
constexpr std::uint32_t k_max_record = 64u * 1024 * 1024;

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[nodiscard]] std::string log_path(const std::string& dir) {
  return dir + "/oplog";
}
[[nodiscard]] std::string ckpt_path(const std::string& dir) {
  return dir + "/checkpoint";
}

void put_u32(byte_buffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Reads the whole file, or nullopt when it does not exist. Other I/O
/// failures throw op_log_error.
[[nodiscard]] std::optional<byte_buffer> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    if (!std::filesystem::exists(path)) return std::nullopt;
    throw op_log_error{"cannot open " + path};
  }
  byte_buffer data{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  if (in.bad()) throw op_log_error{"read failed for " + path};
  return data;
}

/// Parses one [len][crc][payload] frame at `off`, advancing it. Strict: a
/// partial frame, oversized length, or checksum mismatch throws.
[[nodiscard]] byte_buffer parse_record(const byte_buffer& data, std::size_t& off,
                                       const std::string& path) {
  const auto fail = [&](const char* what) -> void {
    throw op_log_error{std::string{what} + " in " + path + " at offset " +
                       std::to_string(off)};
  };
  if (data.size() - off < 8) fail("truncated record header");
  const auto get_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data[at + static_cast<std::size_t>(i)];
    return v;
  };
  const std::uint32_t len = get_u32(off);
  const std::uint32_t crc = get_u32(off + 4);
  if (len > k_max_record) fail("oversized record");
  if (data.size() - off - 8 < len) fail("truncated record payload");
  byte_buffer payload{data.begin() + static_cast<std::ptrdiff_t>(off + 8),
                      data.begin() + static_cast<std::ptrdiff_t>(off + 8 + len)};
  if (crc32(payload) != crc) fail("record checksum mismatch");
  off += 8 + len;
  return payload;
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw op_log_error{"write failed for " + path + ": " +
                         std::strerror(errno)};
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(byte_view data) {
  static constexpr std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

durable_store::durable_store(std::string dir) : dir_{std::move(dir)} {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw op_log_error{"cannot create durable dir " + dir_};

  if (const auto ckpt = read_file(ckpt_path(dir_))) {
    const byte_buffer& data = *ckpt;
    if (data.size() < k_ckpt_magic.size() ||
        !std::equal(k_ckpt_magic.begin(), k_ckpt_magic.end(), data.begin())) {
      throw op_log_error{"bad checkpoint magic in " + ckpt_path(dir_)};
    }
    std::size_t off = k_ckpt_magic.size();
    recovered_.checkpoint = parse_record(data, off, ckpt_path(dir_));
    if (off != data.size()) {
      throw op_log_error{"trailing bytes after checkpoint in " + ckpt_path(dir_)};
    }
    recovered_.has_checkpoint = true;
  }

  if (const auto log = read_file(log_path(dir_))) {
    const byte_buffer& data = *log;
    if (data.size() < k_log_magic.size() ||
        !std::equal(k_log_magic.begin(), k_log_magic.end(), data.begin())) {
      throw op_log_error{"bad op-log magic in " + log_path(dir_)};
    }
    std::size_t off = k_log_magic.size();
    while (off < data.size()) {
      recovered_.records.push_back(parse_record(data, off, log_path(dir_)));
    }
    log_records_ = recovered_.records.size();
    open_log_for_append(/*truncate=*/false);
  } else {
    open_log_for_append(/*truncate=*/true);
  }
}

durable_store::~durable_store() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void durable_store::open_log_for_append(bool truncate) {
  if (log_fd_ >= 0) ::close(log_fd_);
  const std::string path = log_path(dir_);
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  log_fd_ = ::open(path.c_str(), flags, 0644);
  if (log_fd_ < 0) {
    throw op_log_error{"cannot open " + path + ": " + std::strerror(errno)};
  }
  if (truncate) {
    write_all(log_fd_, reinterpret_cast<const std::uint8_t*>(k_log_magic.data()),
              k_log_magic.size(), path);
    log_records_ = 0;
  }
}

void durable_store::append(byte_view record) {
  byte_buffer frame;
  frame.reserve(8 + record.size());
  put_u32(frame, static_cast<std::uint32_t>(record.size()));
  put_u32(frame, crc32(record));
  frame.insert(frame.end(), record.begin(), record.end());
  // One write() call per record: the frame reaches the OS atomically enough
  // for the process-crash model (_Exit / SIGKILL keep kernel buffers).
  write_all(log_fd_, frame.data(), frame.size(), log_path(dir_));
  ++log_records_;
}

void durable_store::write_checkpoint(byte_view snapshot) {
  const std::string path = ckpt_path(dir_);
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
      throw op_log_error{"cannot open " + tmp + ": " + std::strerror(errno)};
    }
    byte_buffer frame;
    frame.reserve(k_ckpt_magic.size() + 8 + snapshot.size());
    frame.insert(frame.end(), k_ckpt_magic.begin(), k_ckpt_magic.end());
    put_u32(frame, static_cast<std::uint32_t>(snapshot.size()));
    put_u32(frame, crc32(snapshot));
    frame.insert(frame.end(), snapshot.begin(), snapshot.end());
    try {
      write_all(fd, frame.data(), frame.size(), tmp);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw op_log_error{"cannot rename " + tmp + ": " + std::strerror(errno)};
  }
  // The snapshot supersedes every logged record: truncate the log back to
  // its header so the store stays bounded.
  open_log_for_append(/*truncate=*/true);
}

}  // namespace tormet::util
