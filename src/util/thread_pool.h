// Fixed-size worker pool for data-parallel batch work. The crypto batch
// engine shards homogeneous vectors (encrypt/rerandomize/strip passes)
// across it; results never depend on the worker count because shard
// boundaries and per-shard RNG streams are fixed by the caller, not by
// scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tormet::util {

class thread_pool {
 public:
  /// Starts `workers` threads (0 = std::thread::hardware_concurrency, min 1).
  explicit thread_pool(std::size_t workers = 0);
  ~thread_pool();
  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Partitions [0, n) into chunks of at most `grain` indices, runs
  /// fn(begin, end) for every chunk across the workers plus the calling
  /// thread, and blocks until all chunks finish. The first exception thrown
  /// by any chunk is rethrown on the caller after the batch drains. `fn`
  /// must be safe to invoke concurrently on disjoint ranges.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct batch_state;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<std::function<void()>> queue_;
  bool shutting_down_ = false;
};

}  // namespace tormet::util
