#include "src/util/bytes.h"

#include "src/util/check.h"

namespace tormet {

namespace {
constexpr char k_hex_digits[] = "0123456789abcdef";

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(byte_view data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const auto b : data) {
    out.push_back(k_hex_digits[b >> 4]);
    out.push_back(k_hex_digits[b & 0x0f]);
  }
  return out;
}

byte_buffer from_hex(std::string_view hex) {
  expects(hex.size() % 2 == 0, "hex string must have even length");
  byte_buffer out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    expects(hi >= 0 && lo >= 0, "hex string must contain only hex digits");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace tormet
