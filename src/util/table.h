// Result-table formatting used by the benchmark harnesses to print the
// paper's rows ("paper value vs measured value") in a uniform layout.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace tormet {

/// One reproduced quantity: what the paper reports vs what we measured, with
/// an optional 95 % confidence interval on the measured side.
struct repro_row {
  std::string statistic;
  std::string paper_value;     // verbatim-ish from the paper, e.g. "148 million"
  std::string measured_value;  // our inferred value, same units
  std::string ci;              // e.g. "[143; 153] million", may be empty
  std::string note;            // e.g. "scaled x1000", may be empty
};

/// A titled block of repro rows (one per table/figure panel).
class repro_table {
 public:
  explicit repro_table(std::string title) : title_{std::move(title)} {}

  void add(repro_row row) { rows_.push_back(std::move(row)); }
  void add(std::string statistic, std::string paper_value,
           std::string measured_value, std::string ci = "",
           std::string note = "") {
    rows_.push_back({std::move(statistic), std::move(paper_value),
                     std::move(measured_value), std::move(ci), std::move(note)});
  }

  [[nodiscard]] const std::vector<repro_row>& rows() const noexcept { return rows_; }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders the table with aligned columns and a rule under the title.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<repro_row> rows_;
};

/// Formats a double with `digits` significant digits (benchmark output).
[[nodiscard]] std::string format_sig(double value, int digits = 3);

/// Formats "value [lo; hi]" with units scaling, e.g. 1.48e8 -> "148 million".
[[nodiscard]] std::string format_count(double value);

/// Formats a ratio as a percentage with one decimal, e.g. 0.401 -> "40.1 %".
[[nodiscard]] std::string format_percent(double fraction);

/// Formats bytes as KiB/MiB/GiB/TiB with 3 significant digits.
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace tormet
