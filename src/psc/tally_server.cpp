#include "src/psc/tally_server.h"

#include <algorithm>

#include "src/dp/noise.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::psc {

tally_server::tally_server(net::node_id self, net::transport& transport,
                           std::vector<net::node_id> data_collectors,
                           std::vector<net::node_id> computation_parties)
    : self_{self}, transport_{transport}, dcs_{std::move(data_collectors)},
      cps_{std::move(computation_parties)} {
  expects(!dcs_.empty(), "need at least one data collector");
  expects(!cps_.empty(), "need at least one computation party");
}

void tally_server::set_thread_pool(std::shared_ptr<util::thread_pool> pool) {
  pool_ = std::move(pool);
}

void tally_server::begin_round(const round_params& params) {
  ++round_id_;
  params_ = params;
  group_ = crypto::make_group(params_.group);
  engine_ = std::make_unique<crypto::batch_engine>(group_, pool_);
  pk_shares_.clear();
  joint_pk_ = {};
  dcs_configured_ = false;
  reports_requested_ = false;
  mixing_started_ = false;
  decrypt_requested_ = false;
  dc_reports_seen_.clear();
  combined_.clear();
  raw_count_.reset();

  noise_bits_per_cp_ =
      params_.noise_enabled
          ? dp::binomial_noise_bits(params_.sensitivity, params_.privacy.epsilon,
                                    params_.privacy.delta, params_.noise_constant)
          : 0;

  cp_configure_msg cfg;
  cfg.round_id = round_id_;
  cfg.bins = params_.bins;
  cfg.noise_bits = noise_bits_per_cp_;
  cfg.group = static_cast<std::uint8_t>(params_.group);
  cfg.cp_chain = cps_;
  for (const auto cp : cps_) {
    transport_.send(encode_cp_configure(self_, cp, cfg));
  }
}

void tally_server::maybe_distribute_joint_key() {
  if (pk_shares_.size() != cps_.size() || dcs_configured_) return;
  std::vector<crypto::group_element> shares;
  shares.reserve(pk_shares_.size());
  for (const auto& [cp, pk] : pk_shares_) shares.push_back(pk);
  joint_pk_ = engine_->scheme().combine_public_keys(shares);

  dc_configure_msg cfg;
  cfg.round_id = round_id_;
  cfg.bins = params_.bins;
  cfg.group = static_cast<std::uint8_t>(params_.group);
  cfg.joint_pk = group_->encode(joint_pk_);
  for (const auto dc : dcs_) {
    transport_.send(encode_dc_configure(self_, dc, cfg));
  }
  // CPs need the joint key too (noise encryption + rerandomization).
  for (const auto cp : cps_) {
    transport_.send(encode_dc_configure(self_, cp, cfg));
  }
  dcs_configured_ = true;
}

bool tally_server::setup_complete() const { return dcs_configured_; }

void tally_server::resume_at_round(std::uint32_t next_round) {
  expects(next_round >= 1, "rounds are 1-based");
  round_id_ = next_round - 1;
}

void tally_server::request_reports() {
  expects(dcs_configured_, "round not configured");
  reports_requested_ = true;
  for (const auto dc : dcs_) {
    transport_.send(encode_report_request(self_, dc, round_id_));
  }
  // A TS retrying a round may already hold every (re-sent, byte-identical)
  // DC table by the time it asks for reports — start mixing immediately
  // instead of waiting for arrivals that already happened.
  maybe_start_mixing();
}

void tally_server::maybe_start_mixing() {
  if (mixing_started_ || !reports_requested_) return;
  if (dc_reports_seen_.size() != dcs_.size()) return;
  force_mixing();
}

void tally_server::force_mixing() {
  if (mixing_started_) return;
  expects(!combined_.empty(), "no DC tables received");
  mixing_started_ = true;
  vector_msg m;
  m.round_id = round_id_;
  m.ciphertexts = engine_->encode_batch(combined_);
  transport_.send(encode_vector(self_, cps_.front(), msg_type::mix_pass, m));
}

void tally_server::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::pk_share: {
      const pk_share_msg m = decode_pk_share(msg);
      if (m.round_id != round_id_) return;
      pk_shares_[msg.from] = group_->decode(m.pk);
      maybe_distribute_joint_key();
      return;
    }
    case msg_type::dc_vector: {
      const vector_msg m = decode_vector(msg);
      if (m.round_id != round_id_) return;
      if (std::find(dcs_.begin(), dcs_.end(), msg.from) == dcs_.end()) {
        // A DC excluded from the deployment (or never part of it) cannot
        // contribute: counting its table would both re-admit dropped data
        // and let its arrival satisfy the completeness check meant for the
        // survivors.
        log_line{log_level::warn}
            << "PSC TS: dropping table from non-member DC " << msg.from;
        return;
      }
      if (mixing_started_) {
        // A straggler's table arriving after the mix launched (the TS
        // proceeded without it under the live pipeline's grace): combining
        // now would corrupt the in-flight round.
        log_line{log_level::warn}
            << "PSC TS: DC " << msg.from
            << " table arrived after mixing started; dropping";
        return;
      }
      if (m.ciphertexts.size() != params_.bins) {
        log_line{log_level::warn}
            << "PSC TS: DC " << msg.from << " table has wrong size; dropping";
        return;
      }
      if (!dc_reports_seen_.insert(msg.from).second) return;
      std::vector<crypto::elgamal_ciphertext> cts =
          engine_->decode_batch(m.ciphertexts);
      if (combined_.empty()) {
        combined_ = std::move(cts);
      } else {
        combined_ = engine_->add_batch(combined_, cts);
      }
      maybe_start_mixing();
      return;
    }
    case msg_type::mix_pass: {
      // The mixed vector returned from the last CP: start the decrypt chain.
      const vector_msg m = decode_vector(msg);
      if (m.round_id != round_id_) return;
      if (decrypt_requested_) {
        // A stale duplicate from a retried round attempt (byte-identical by
        // per-round determinism): one decrypt chain is enough.
        return;
      }
      decrypt_requested_ = true;
      transport_.send(encode_vector(self_, cps_.front(), msg_type::decrypt_pass,
                                    vector_msg{m.round_id, m.ciphertexts}));
      return;
    }
    case msg_type::final_vector: {
      const vector_msg m = decode_vector(msg);
      if (m.round_id != round_id_) return;
      // After every CP stripped its share, b holds the plaintext: the batch
      // tally decode parses only the b components and counts non-identity
      // bins, sharded across the pool at large bin counts.
      raw_count_ = engine_->tally_decode_count(m.ciphertexts);
      return;
    }
    default:
      log_line{log_level::warn} << "PSC TS: unexpected message type " << msg.type;
  }
}

void tally_server::exclude_dc(net::node_id id) {
  const auto it = std::find(dcs_.begin(), dcs_.end(), id);
  if (it == dcs_.end()) return;
  expects(dcs_.size() > 1, "cannot exclude the last data collector");
  dcs_.erase(it);
  log_line{log_level::warn} << "PSC TS: excluding DC " << id
                            << " from the deployment";
}

void tally_server::readmit_dc(net::node_id id) {
  if (std::find(dcs_.begin(), dcs_.end(), id) != dcs_.end()) return;
  dcs_.push_back(id);
  log_line{log_level::info} << "PSC TS: re-admitting DC " << id
                            << " from the next round";
}

std::uint64_t tally_server::raw_count() const {
  expects(raw_count_.has_value(), "result not ready");
  return *raw_count_;
}

}  // namespace tormet::psc
