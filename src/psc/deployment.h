// Convenience wrapper assembling a full PSC deployment (1 TS, m CPs, n DCs)
// over a transport — the paper's §3.1 deployment is 1 TS, 3 CPs, 16 DCs —
// wiring DC item extraction to a tor::network and running unique-count
// rounds end to end.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/crypto/secure_rng.h"
#include "src/net/transport.h"
#include "src/psc/computation_party.h"
#include "src/psc/data_collector.h"
#include "src/psc/estimator.h"
#include "src/psc/tally_server.h"
#include "src/tor/network.h"
#include "src/util/thread_pool.h"

namespace tormet::psc {

struct deployment_config {
  std::size_t num_computation_parties = 3;
  std::vector<tor::relay_id> measured_relays;
  round_params round{};
  /// Deployment seed. Every node draws from its own deterministic stream
  /// derived as crypto::derive_node_seed(rng_seed, node_id), so protocol
  /// outputs do not depend on how message delivery interleaves across
  /// nodes — an in-process round and a distributed multi-process round
  /// with the same seed produce identical tallies.
  std::uint64_t rng_seed = 3141;
  /// Workers in the shared crypto thread pool (0 = inline, no pool).
  /// Protocol outputs are identical for any value — batch RNG streams are
  /// seeded per shard, never per worker.
  std::size_t worker_threads = 0;
};

/// Raw protocol outcome of one PSC round plus its point estimate.
struct round_outcome {
  std::uint64_t raw_count = 0;
  std::uint64_t bins = 0;
  std::uint64_t total_noise_bits = 0;
  cardinality_estimate estimate{};
};

class deployment {
 public:
  /// Node ids: TS=0, CPs=1..m, DCs=m+1..m+n (in measured_relays order).
  deployment(net::transport& transport, const deployment_config& config);

  /// Installs the item extractor on every DC.
  void set_extractor(data_collector::extractor fn);

  /// Hooks the DCs into `net` (observed relays + event routing).
  void attach(tor::network& net);

  /// Runs one full round: key setup -> collect (caller generates traffic in
  /// `workload`) -> combine/mix/decrypt -> estimate.
  round_outcome run_round(const std::function<void()>& workload);

  [[nodiscard]] tally_server& ts() noexcept { return *ts_; }
  /// Direct DC access (index follows measured_relays order) for synthetic
  /// workloads that insert items without going through a tor::network —
  /// e.g. the orchestrator's in-process reference round.
  [[nodiscard]] data_collector& dc_at(std::size_t i) { return *dcs_.at(i); }
  [[nodiscard]] const std::set<tor::relay_id>& measured_relays() const noexcept {
    return measured_set_;
  }

 private:
  net::transport& transport_;
  deployment_config config_;
  /// One RNG per node, seeded via derive_node_seed at construction and
  /// reseeded via derive_node_round_seed at each round boundary.
  std::vector<std::unique_ptr<crypto::deterministic_rng>> node_rngs_;
  std::vector<net::node_id> rng_node_ids_;  // parallel to node_rngs_
  std::shared_ptr<util::thread_pool> pool_;
  std::unique_ptr<tally_server> ts_;
  std::vector<std::unique_ptr<computation_party>> cps_;
  std::vector<std::unique_ptr<data_collector>> dcs_;
  std::map<tor::relay_id, data_collector*> dc_by_relay_;
  std::set<tor::relay_id> measured_set_;
};

}  // namespace tormet::psc
