// PSC data collector: owns the oblivious encrypted bit table for one
// measurement relay, feeds items into it during collection, and ships the
// encrypted table to the tally server on request. Batched ingest is
// sharded by bin and optionally runs the shards on a worker pool; the
// table bytes never depend on the shard count or the worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/event_sink.h"
#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/secure_rng.h"
#include "src/net/transport.h"
#include "src/psc/messages.h"
#include "src/psc/oblivious_set.h"
#include "src/tor/events.h"
#include "src/util/thread_pool.h"

namespace tormet::psc {

class data_collector final : public core::event_sink {
 public:
  /// An extractor maps an observed event to the item whose distinctness is
  /// being counted (client IP string, SLD, onion address, ...); nullopt
  /// means the event does not contribute.
  using extractor = std::function<std::optional<std::string>(const tor::event&)>;

  data_collector(net::node_id self, net::node_id tally_server,
                 net::transport& transport, crypto::secure_rng& rng);

  void set_extractor(extractor fn);
  /// Shares `pool` for the bulk table initialization at configure time and
  /// for running the ingest shards. Rejected while a table is live (between
  /// dc_configure and the report): the ingest plane is reconfigured between
  /// rounds only.
  void set_thread_pool(std::shared_ptr<util::thread_pool> pool) override;
  /// Number of ingest shards (>= 1) for batched ingest. The table bytes
  /// are identical for every value: seeds are pre-drawn per insert in
  /// event order and bins are owned by exactly one shard, so the
  /// last-insert-wins slot contents never depend on the partition.
  /// Rejected while a table is live, like set_thread_pool.
  void set_shards(std::size_t n) override;
  [[nodiscard]] std::size_t shards() const noexcept override { return shards_; }
  void handle_message(const net::message& msg);
  void observe(const tor::event& ev) override;

  /// Feeds a contiguous batch of observed events: a serial pre-pass runs
  /// the extractor and draws one insert seed per item in event order, then
  /// each shard executes the seeded inserts for the bins it owns — one
  /// pool worker per shard chunk when a pool is attached.
  /// Byte-equivalent to observe() per event.
  void ingest(const tor::event* evs, std::size_t n) override;

  /// Direct item insertion (for callers not going through tor events).
  void insert_item(std::string_view item);

  [[nodiscard]] net::node_id id() const noexcept { return self_; }
  [[nodiscard]] bool configured() const noexcept { return set_ != nullptr; }
  /// Events seen / items actually inserted (extractor hits) since
  /// construction — observability for trace-replay deployments (the item
  /// *identities* are never retained, only these totals).
  [[nodiscard]] std::uint64_t events_observed() const noexcept override {
    return events_observed_;
  }
  [[nodiscard]] std::uint64_t items_inserted() const noexcept {
    return items_inserted_;
  }

 private:
  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;
  crypto::secure_rng& rng_;
  extractor extractor_;
  std::size_t shards_ = 1;
  /// Ingest scratch: (bin, seed) pairs bucketed by owning shard.
  std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>> buckets_;
  std::uint64_t events_observed_ = 0;
  std::uint64_t items_inserted_ = 0;

  std::uint32_t round_id_ = 0;
  std::shared_ptr<util::thread_pool> pool_;
  std::shared_ptr<const crypto::group> group_;
  std::unique_ptr<crypto::batch_engine> engine_;  // outlives set_ (set_ holds
                                                  // a reference to its scheme)
  std::unique_ptr<oblivious_set> set_;
};

}  // namespace tormet::psc
