// PSC protocol messages. The paper's §3.1 extension adds a tally server
// that coordinates the DCs and CPs; the message flow here follows that
// design:
//
//   TS -> CP   cp_configure        (bins, noise bits, group backend)
//   CP -> TS   pk_share            (public-key share)
//   TS -> DC   dc_configure        (bins, joint public key)
//   ... collection: DCs insert items locally/obliviously ...
//   TS -> DC   report_request
//   DC -> TS   dc_vector           (encrypted bit table)
//   TS combines homomorphically, then the vector walks the CP chain twice:
//   TS -> CP1 -> ... -> CPm        mix_pass    (noise + shuffle + rerandomize)
//   CPm -> TS, TS -> CP1 -> ...    decrypt_pass (each strips its key share)
//   CPm -> TS  final plaintext structure; TS counts non-identity bins.
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/group.h"
#include "src/net/transport.h"

namespace tormet::psc {

enum class msg_type : std::uint16_t {
  cp_configure = 32,
  pk_share = 33,
  dc_configure = 34,
  report_request = 35,
  dc_vector = 36,
  mix_pass = 37,
  decrypt_pass = 38,
  final_vector = 39,
};

struct cp_configure_msg {
  std::uint32_t round_id = 0;
  std::uint64_t bins = 0;
  std::uint64_t noise_bits = 0;  // per CP
  std::uint8_t group = 0;        // crypto::group_backend
  std::vector<net::node_id> cp_chain;  // mixing order
};

struct pk_share_msg {
  std::uint32_t round_id = 0;
  byte_buffer pk;
};

struct dc_configure_msg {
  std::uint32_t round_id = 0;
  std::uint64_t bins = 0;
  std::uint8_t group = 0;
  byte_buffer joint_pk;
};

/// A ciphertext vector in transit (dc_vector / mix_pass / decrypt_pass /
/// final_vector all carry this shape).
struct vector_msg {
  std::uint32_t round_id = 0;
  std::vector<byte_buffer> ciphertexts;
};

[[nodiscard]] net::message encode_cp_configure(net::node_id from, net::node_id to,
                                               const cp_configure_msg& m);
[[nodiscard]] cp_configure_msg decode_cp_configure(const net::message& msg);

[[nodiscard]] net::message encode_pk_share(net::node_id from, net::node_id to,
                                           const pk_share_msg& m);
[[nodiscard]] pk_share_msg decode_pk_share(const net::message& msg);

[[nodiscard]] net::message encode_dc_configure(net::node_id from, net::node_id to,
                                               const dc_configure_msg& m);
[[nodiscard]] dc_configure_msg decode_dc_configure(const net::message& msg);

[[nodiscard]] net::message encode_report_request(net::node_id from, net::node_id to,
                                                 std::uint32_t round_id);

[[nodiscard]] net::message encode_vector(net::node_id from, net::node_id to,
                                         msg_type type, const vector_msg& m);
[[nodiscard]] vector_msg decode_vector(const net::message& msg);

/// Helpers converting between ciphertext vectors and their encodings.
[[nodiscard]] std::vector<byte_buffer> encode_ciphertexts(
    const crypto::elgamal& scheme,
    const std::vector<crypto::elgamal_ciphertext>& cts);
[[nodiscard]] std::vector<crypto::elgamal_ciphertext> decode_ciphertexts(
    const crypto::elgamal& scheme, const std::vector<byte_buffer>& enc);

}  // namespace tormet::psc
