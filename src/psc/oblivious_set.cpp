#include "src/psc/oblivious_set.h"

#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::psc {

oblivious_set::oblivious_set(const crypto::elgamal& scheme,
                             crypto::group_element joint_pub, std::size_t bins,
                             crypto::secure_rng& rng)
    : scheme_{scheme}, joint_pub_{std::move(joint_pub)} {
  expects(bins >= 2, "oblivious set needs at least two bins");
  slots_ = scheme_.encrypt_zero_batch(joint_pub_, bins, rng);
}

oblivious_set::oblivious_set(const crypto::batch_engine& engine,
                             crypto::group_element joint_pub, std::size_t bins,
                             crypto::secure_rng& rng)
    : scheme_{engine.scheme()}, joint_pub_{std::move(joint_pub)} {
  expects(bins >= 2, "oblivious set needs at least two bins");
  slots_ = engine.encrypt_zero_batch(joint_pub_, bins,
                                     crypto::batch_engine::derive_seed(rng));
}

std::size_t oblivious_set::bin_of(byte_view item) const {
  crypto::sha256_hasher h;
  h.update("tormet.psc.item.v1");
  h.update_framed(item);
  const crypto::sha256_digest d = h.finish();
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | d[static_cast<std::size_t>(i)];
  return static_cast<std::size_t>(x % slots_.size());
}

void oblivious_set::insert(byte_view item, crypto::secure_rng& rng) {
  expects(!slots_.empty(), "set has been taken");
  slots_[bin_of(item)] = scheme_.encrypt_one(joint_pub_, rng);
}

}  // namespace tormet::psc
