#include "src/psc/oblivious_set.h"

#include "src/crypto/secure_rng.h"
#include "src/crypto/sha256.h"
#include "src/util/check.h"

namespace tormet::psc {

oblivious_set::oblivious_set(const crypto::elgamal& scheme,
                             crypto::group_element joint_pub, std::size_t bins,
                             crypto::secure_rng& rng)
    : scheme_{scheme}, joint_pub_{std::move(joint_pub)} {
  expects(bins >= 2, "oblivious set needs at least two bins");
  slots_ = scheme_.encrypt_zero_batch(joint_pub_, bins, rng);
}

oblivious_set::oblivious_set(const crypto::batch_engine& engine,
                             crypto::group_element joint_pub, std::size_t bins,
                             crypto::secure_rng& rng)
    : scheme_{engine.scheme()}, joint_pub_{std::move(joint_pub)} {
  expects(bins >= 2, "oblivious set needs at least two bins");
  slots_ = engine.encrypt_zero_batch(joint_pub_, bins,
                                     crypto::batch_engine::derive_seed(rng));
}

std::size_t oblivious_set::bin_of(byte_view item) const {
  crypto::sha256_hasher h;
  h.update("tormet.psc.item.v1");
  h.update_framed(item);
  const crypto::sha256_digest d = h.finish();
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | d[static_cast<std::size_t>(i)];
  return static_cast<std::size_t>(x % slots_.size());
}

void oblivious_set::insert(byte_view item, crypto::secure_rng& rng) {
  expects(!slots_.empty(), "set has been taken");
  // Route through the seeded path so a per-event observe() and a sharded
  // batched ingest of the same stream produce byte-identical tables (both
  // consume exactly one u64 of `rng` per insert).
  insert_seeded_bin(bin_of(item), rng.next_u64());
}

void oblivious_set::insert_seeded_bin(std::size_t bin, std::uint64_t seed) {
  expects(!slots_.empty(), "set has been taken");
  expects(bin < slots_.size(), "bin index out of range");
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  crypto::sha256_hasher h;
  h.update("tormet.psc.insert.v1");
  h.update(byte_view{le, sizeof le});
  crypto::stream_rng r{h.finish()};
  slots_[bin] = scheme_.encrypt_one(joint_pub_, r);
}

}  // namespace tormet::psc
