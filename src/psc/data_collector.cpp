#include "src/psc/data_collector.h"

#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::psc {

data_collector::data_collector(net::node_id self, net::node_id tally_server,
                               net::transport& transport,
                               crypto::secure_rng& rng)
    : self_{self}, tally_server_{tally_server}, transport_{transport}, rng_{rng} {}

void data_collector::set_extractor(extractor fn) { extractor_ = std::move(fn); }

void data_collector::set_thread_pool(std::shared_ptr<util::thread_pool> pool) {
  expects(set_ == nullptr, "ingest pool is fixed while a table is live");
  pool_ = std::move(pool);
}

void data_collector::set_shards(std::size_t n) {
  expects(n >= 1, "a DC needs at least one ingest shard");
  expects(set_ == nullptr, "shard count is fixed while a table is live");
  shards_ = n;
}

void data_collector::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::dc_configure: {
      const dc_configure_msg m = decode_dc_configure(msg);
      round_id_ = m.round_id;
      group_ = crypto::make_group(static_cast<crypto::group_backend>(m.group));
      set_.reset();  // drop any stale table before its engine
      engine_ = std::make_unique<crypto::batch_engine>(group_, pool_);
      const crypto::group_element joint_pk = group_->decode(m.joint_pk);
      set_ = std::make_unique<oblivious_set>(*engine_, joint_pk,
                                             static_cast<std::size_t>(m.bins), rng_);
      return;
    }
    case msg_type::report_request: {
      if (set_ == nullptr) {
        // A restarted DC can receive a stale report_request (the TS
        // writer's resent suffix) before the retry's dc_configure arrives;
        // the TS re-requests after reconfiguring.
        log_line{log_level::warn}
            << "PSC DC " << self_
            << ": report requested before configuration; dropping";
        return;
      }
      vector_msg report;
      report.round_id = round_id_;
      report.ciphertexts = engine_->scheme().encode_batch(set_->take_slots());
      transport_.send(encode_vector(self_, tally_server_, msg_type::dc_vector,
                                    report));
      set_.reset();  // the table has been shipped; nothing remains to seize
      return;
    }
    default:
      log_line{log_level::warn} << "PSC DC " << self_
                                << ": unexpected message type " << msg.type;
  }
}

void data_collector::insert_item(std::string_view item) {
  if (set_ == nullptr) return;  // not configured / already reported
  set_->insert(as_bytes(item), rng_);
  ++items_inserted_;
}

void data_collector::observe(const tor::event& ev) {
  if (extractor_ == nullptr || set_ == nullptr) return;
  ++events_observed_;
  const std::optional<std::string> item = extractor_(ev);
  if (item.has_value()) insert_item(*item);
}

void data_collector::ingest(const tor::event* evs, std::size_t n) {
  if (extractor_ == nullptr || set_ == nullptr || n == 0) return;
  events_observed_ += n;
  if (shards_ == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::optional<std::string> item = extractor_(evs[i]);
      if (item.has_value()) insert_item(*item);
    }
    return;
  }
  // Serial pre-pass in event order: hash each extracted item to its bin and
  // draw its insert seed. Drawing here (not in the per-shard loop) keeps the
  // rng stream identical to observe()-per-event, and bucketing by bin means
  // one bin is only ever touched by one shard, so in-bin insert order equals
  // event order and last-insert-wins yields partition-independent bytes.
  buckets_.resize(shards_);
  for (auto& b : buckets_) b.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::optional<std::string> item = extractor_(evs[i]);
    if (!item.has_value()) continue;
    const std::size_t bin = set_->bin_of(as_bytes(*item));
    const std::uint64_t seed = rng_.next_u64();
    ++items_inserted_;
    buckets_[bin % shards_].emplace_back(bin, seed);
  }
  if (pool_ != nullptr) {
    // Execute the seeded inserts on the workers, one chunk of shards per
    // party. Bins are owned by exactly one shard and each ciphertext is a
    // pure function of (bin, seed), so concurrent chunks write disjoint
    // slots and the table bytes match the serial path for every worker
    // count; the parallel_for return is the window-end merge barrier.
    const std::size_t parties = pool_->size() + 1;
    const std::size_t grain = (shards_ + parties - 1) / parties;
    pool_->parallel_for(shards_, grain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        for (const auto& [bin, seed] : buckets_[s]) {
          set_->insert_seeded_bin(bin, seed);
        }
      }
    });
    return;
  }
  for (auto& b : buckets_) {
    for (const auto& [bin, seed] : b) set_->insert_seeded_bin(bin, seed);
  }
}

}  // namespace tormet::psc
