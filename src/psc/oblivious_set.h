// PSC's oblivious counter: a hash table of ElGamal-encrypted bits. Inserting
// an item *overwrites* its bin with a fresh encryption of a random non-
// identity element — no read, no plaintext bit stored — so a data collector
// holds nothing that reveals which items (client IPs, onion addresses,
// SLDs) it has seen (§5.1: "we do not store (even temporarily) IP
// addresses since PSC uses oblivious counters").
#pragma once

#include <cstdint>
#include <vector>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/util/bytes.h"

namespace tormet::psc {

class oblivious_set {
 public:
  /// All bins initialized to encryptions of zero under `joint_pub`, drawn
  /// serially from `rng` through the elgamal batch path.
  oblivious_set(const crypto::elgamal& scheme, crypto::group_element joint_pub,
                std::size_t bins, crypto::secure_rng& rng);

  /// Same table, initialized through `engine` (multi-threaded when the
  /// engine has a pool; `rng` supplies only the 32-byte batch seed). The
  /// engine must outlive this set — inserts use its elgamal instance.
  oblivious_set(const crypto::batch_engine& engine,
                crypto::group_element joint_pub, std::size_t bins,
                crypto::secure_rng& rng);

  /// Bin index an item hashes to.
  [[nodiscard]] std::size_t bin_of(byte_view item) const;

  /// Marks the item present (idempotent by construction).
  void insert(byte_view item, crypto::secure_rng& rng);

  /// Inserts into a specific bin using encryption randomness derived from
  /// `seed` alone (domain-separated ChaCha20 stream). Because the
  /// ciphertext depends only on (bin, seed), sharded ingest can pre-draw
  /// one seed per insert in event order and then execute the inserts in
  /// any per-bin-order-preserving schedule: the last insert into a bin
  /// wins, so the final table bytes are independent of the shard count.
  void insert_seeded_bin(std::size_t bin, std::uint64_t seed);

  [[nodiscard]] std::size_t bins() const noexcept { return slots_.size(); }
  [[nodiscard]] const std::vector<crypto::elgamal_ciphertext>& slots()
      const noexcept {
    return slots_;
  }
  /// Moves the encrypted table out (for the report); the set is empty after.
  [[nodiscard]] std::vector<crypto::elgamal_ciphertext> take_slots() noexcept {
    return std::move(slots_);
  }

 private:
  const crypto::elgamal& scheme_;
  crypto::group_element joint_pub_;
  std::vector<crypto::elgamal_ciphertext> slots_;
};

}  // namespace tormet::psc
