#include "src/psc/deployment.h"

#include "src/util/check.h"

namespace tormet::psc {

deployment::deployment(net::transport& transport, const deployment_config& config)
    : transport_{transport}, config_{config} {
  expects(!config_.measured_relays.empty(), "deployment needs measured relays");
  expects(config_.num_computation_parties >= 1, "deployment needs a CP");

  if (config_.worker_threads > 0) {
    pool_ = std::make_shared<util::thread_pool>(config_.worker_threads);
  }

  const net::node_id ts_id = 0;
  std::vector<net::node_id> cp_ids;
  for (std::size_t i = 0; i < config_.num_computation_parties; ++i) {
    cp_ids.push_back(static_cast<net::node_id>(1 + i));
  }
  std::vector<net::node_id> dc_ids;
  for (std::size_t i = 0; i < config_.measured_relays.size(); ++i) {
    dc_ids.push_back(
        static_cast<net::node_id>(1 + config_.num_computation_parties + i));
  }

  ts_ = std::make_unique<tally_server>(ts_id, transport_, dc_ids, cp_ids);
  ts_->set_thread_pool(pool_);
  transport_.register_node(ts_id,
                           [this](const net::message& m) { ts_->handle_message(m); });

  // One deterministic stream per node: output is a pure function of
  // (deployment seed, node id), never of cross-node message interleaving —
  // this is what makes a distributed multi-process round byte-identical to
  // the in-process one (see cli::orchestrator). run_round reseeds every
  // stream per (node, round), so a round's randomness is also independent
  // of prior rounds and crashed round attempts.
  for (const auto cp_id : cp_ids) {
    rng_node_ids_.push_back(cp_id);
    node_rngs_.push_back(std::make_unique<crypto::deterministic_rng>(
        crypto::make_node_rng(config_.rng_seed, cp_id)));
    auto cp = std::make_unique<computation_party>(cp_id, ts_id, transport_,
                                                  *node_rngs_.back());
    cp->set_thread_pool(pool_);
    computation_party* raw = cp.get();
    transport_.register_node(cp_id,
                             [raw](const net::message& m) { raw->handle_message(m); });
    cps_.push_back(std::move(cp));
  }

  for (std::size_t i = 0; i < config_.measured_relays.size(); ++i) {
    rng_node_ids_.push_back(dc_ids[i]);
    node_rngs_.push_back(std::make_unique<crypto::deterministic_rng>(
        crypto::make_node_rng(config_.rng_seed, dc_ids[i])));
    auto dc = std::make_unique<data_collector>(dc_ids[i], ts_id, transport_,
                                               *node_rngs_.back());
    dc->set_thread_pool(pool_);
    data_collector* raw = dc.get();
    transport_.register_node(dc_ids[i],
                             [raw](const net::message& m) { raw->handle_message(m); });
    dc_by_relay_[config_.measured_relays[i]] = raw;
    measured_set_.insert(config_.measured_relays[i]);
    dcs_.push_back(std::move(dc));
  }
}

void deployment::set_extractor(data_collector::extractor fn) {
  for (const auto& dc : dcs_) dc->set_extractor(fn);
}

void deployment::attach(tor::network& net) {
  net.set_observed_relays(measured_set_);
  net.set_event_sink([this](const tor::event& ev) {
    const auto it = dc_by_relay_.find(ev.observer);
    if (it != dc_by_relay_.end()) it->second->observe(ev);
  });
}

round_outcome deployment::run_round(const std::function<void()>& workload) {
  // Reseed each node's stream for the upcoming round id, mirroring what
  // cli::node_runner does in a distributed round on receiving that round's
  // configure message (the byte-identity gate needs both sides to agree).
  const std::uint32_t next_round = ts_->round_id() + 1;
  for (std::size_t i = 0; i < node_rngs_.size(); ++i) {
    *node_rngs_[i] =
        crypto::make_node_round_rng(config_.rng_seed, rng_node_ids_[i], next_round);
  }
  ts_->begin_round(config_.round);
  transport_.run_until_quiescent();
  expects(ts_->setup_complete(), "PSC key setup did not complete");

  workload();

  ts_->request_reports();
  transport_.run_until_quiescent();
  ensures(ts_->result_ready(), "PSC round did not produce a result");

  round_outcome out;
  out.raw_count = ts_->raw_count();
  out.bins = config_.round.bins;
  out.total_noise_bits = ts_->total_noise_bits();
  out.estimate = estimate_cardinality(out.raw_count, out.bins, out.total_noise_bits);
  return out;
}

}  // namespace tormet::psc
