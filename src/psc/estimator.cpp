#include "src/psc/estimator.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tormet::psc {

double expected_occupancy(double n_items, std::uint64_t bins) {
  expects(bins >= 2, "need at least two bins");
  const double b = static_cast<double>(bins);
  return b * (1.0 - std::pow(1.0 - 1.0 / b, n_items));
}

cardinality_estimate estimate_cardinality(std::uint64_t raw_count,
                                          std::uint64_t bins,
                                          std::uint64_t total_noise_bits) {
  expects(bins >= 2, "need at least two bins");
  cardinality_estimate e;
  e.raw_count = raw_count;
  e.expected_noise = static_cast<double>(total_noise_bits) / 2.0;

  const double b = static_cast<double>(bins);
  e.occupied = std::clamp(static_cast<double>(raw_count) - e.expected_noise, 0.0,
                          b - 1.0);  // b-1: full occupancy has no finite inverse

  // Invert E[occ] = b (1 - (1-1/b)^n):  n = ln(1 - occ/b) / ln(1 - 1/b).
  e.cardinality = std::log(1.0 - e.occupied / b) / std::log(1.0 - 1.0 / b);
  if (e.cardinality < 0.0) e.cardinality = 0.0;
  return e;
}

}  // namespace tormet::psc
