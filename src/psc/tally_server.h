// PSC tally server (the paper's §3.1 extension): coordinates key setup,
// collects the DCs' encrypted tables, combines them homomorphically
// (per-bin ciphertext products — an encryption of identity iff no DC set
// the bin), drives the CP mix and decrypt chains, and counts non-identity
// plaintexts. The TS never handles any plaintext item.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/dp/action_bounds.h"
#include "src/net/transport.h"
#include "src/psc/messages.h"
#include "src/util/thread_pool.h"

namespace tormet::psc {

struct round_params {
  std::uint64_t bins = 4096;
  /// Unique-count sensitivity Δ (from the action bounds: e.g. 4 new IPs,
  /// 3 new onion addresses, 20 domains per protected day).
  double sensitivity = 1.0;
  dp::privacy_params privacy{};
  crypto::group_backend group = crypto::group_backend::p256;
  /// Binomial-mechanism analysis constant (see dp::binomial_noise_bits).
  double noise_constant = 8.0;
  bool noise_enabled = true;
};

class tally_server {
 public:
  tally_server(net::node_id self, net::transport& transport,
               std::vector<net::node_id> data_collectors,
               std::vector<net::node_id> computation_parties);

  void handle_message(const net::message& msg);

  /// Shares `pool` with the batch engine that runs the TS's bulk work (DC
  /// table decode + combine, final-vector tally decode). Call before
  /// begin_round; nullptr (the default) runs every batch inline. Protocol
  /// outputs are identical either way.
  void set_thread_pool(std::shared_ptr<util::thread_pool> pool);

  /// Phase 1: configure CPs (they reply with key shares); once all shares
  /// arrive the TS combines them and configures the DCs with the joint key.
  void begin_round(const round_params& params);
  [[nodiscard]] bool setup_complete() const;  // DCs configured

  /// Crash recovery: positions the round counter so the next begin_round
  /// runs as round `next_round` (1-based). Used by a restarted TS resuming
  /// its schedule after op-log replay, and by a durable TS retrying the
  /// same round after a peer crash (per-round RNG reseeding makes a re-run
  /// byte-identical to the interrupted attempt).
  void resume_at_round(std::uint32_t next_round);

  /// Phase 2 (after collection): gather DC tables, combine, and launch the
  /// mix chain. Runs to completion as messages flow.
  void request_reports();

  /// Dropout recovery: starts mixing with the DC tables received so far
  /// (the union simply excludes the dead DCs' observations).
  void force_mixing();

  [[nodiscard]] bool result_ready() const noexcept { return raw_count_.has_value(); }
  /// Decrypted non-identity count (occupied bins + noise ones). Use
  /// psc::estimate_cardinality / stats::psc_confidence_interval to invert.
  [[nodiscard]] std::uint64_t raw_count() const;
  [[nodiscard]] std::uint64_t total_noise_bits() const noexcept {
    return noise_bits_per_cp_ * cps_.size();
  }
  [[nodiscard]] std::uint64_t noise_bits_per_cp() const noexcept {
    return noise_bits_per_cp_;
  }
  [[nodiscard]] const round_params& params() const noexcept { return params_; }
  [[nodiscard]] std::uint32_t round_id() const noexcept { return round_id_; }
  /// DCs whose tables made it into the combination (dropout diagnostics).
  [[nodiscard]] const std::set<net::node_id>& reporting_dcs() const noexcept {
    return dc_reports_seen_;
  }
  /// The DCs this TS still drives (initial list minus exclusions).
  [[nodiscard]] const std::vector<net::node_id>& data_collectors()
      const noexcept {
    return dcs_;
  }
  /// Permanently drops a DC from the deployment (live-pipeline fault
  /// handling): it receives no further configures or report requests and no
  /// longer counts toward report completeness. At least one DC must remain.
  void exclude_dc(net::node_id id);
  /// Rejoin handshake: re-admits a previously excluded (or restarted) DC at
  /// a round boundary — it is configured and counted again from the next
  /// begin_round on. No-op if the DC is already a member.
  void readmit_dc(net::node_id id);

 private:
  void maybe_distribute_joint_key();
  void maybe_start_mixing();

  net::node_id self_;
  net::transport& transport_;
  std::vector<net::node_id> dcs_;
  std::vector<net::node_id> cps_;

  std::uint32_t round_id_ = 0;
  round_params params_;
  std::uint64_t noise_bits_per_cp_ = 0;
  std::shared_ptr<const crypto::group> group_;
  std::shared_ptr<util::thread_pool> pool_;
  /// All bulk ciphertext work (decode, combine, encode, tally decode) runs
  /// through the engine so large bin counts shard across the pool.
  std::unique_ptr<crypto::batch_engine> engine_;
  std::map<net::node_id, crypto::group_element> pk_shares_;
  crypto::group_element joint_pk_;
  bool dcs_configured_ = false;
  bool reports_requested_ = false;
  bool mixing_started_ = false;
  bool decrypt_requested_ = false;
  std::set<net::node_id> dc_reports_seen_;
  std::vector<crypto::elgamal_ciphertext> combined_;
  std::optional<std::uint64_t> raw_count_;
};

}  // namespace tormet::psc
