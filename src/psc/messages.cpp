#include "src/psc/messages.h"

#include "src/net/wire.h"

namespace tormet::psc {

namespace {
[[nodiscard]] net::message make(net::node_id from, net::node_id to, msg_type type,
                                net::wire_writer& w) {
  net::message msg;
  msg.from = from;
  msg.to = to;
  msg.type = static_cast<std::uint16_t>(type);
  msg.payload = w.take();
  return msg;
}
}  // namespace

net::message encode_cp_configure(net::node_id from, net::node_id to,
                                 const cp_configure_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_u64(m.bins);
  w.write_u64(m.noise_bits);
  w.write_u8(m.group);
  w.write_varint(m.cp_chain.size());
  for (const auto cp : m.cp_chain) w.write_u32(cp);
  return make(from, to, msg_type::cp_configure, w);
}

cp_configure_msg decode_cp_configure(const net::message& msg) {
  net::wire_reader r{msg.payload};
  cp_configure_msg m;
  m.round_id = r.read_u32();
  m.bins = r.read_u64();
  m.noise_bits = r.read_u64();
  m.group = r.read_u8();
  const std::uint64_t n = r.read_varint();
  m.cp_chain.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.cp_chain.push_back(r.read_u32());
  r.expect_end();
  return m;
}

net::message encode_pk_share(net::node_id from, net::node_id to,
                             const pk_share_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_bytes(m.pk);
  return make(from, to, msg_type::pk_share, w);
}

pk_share_msg decode_pk_share(const net::message& msg) {
  net::wire_reader r{msg.payload};
  pk_share_msg m;
  m.round_id = r.read_u32();
  m.pk = r.read_bytes();
  r.expect_end();
  return m;
}

net::message encode_dc_configure(net::node_id from, net::node_id to,
                                 const dc_configure_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_u64(m.bins);
  w.write_u8(m.group);
  w.write_bytes(m.joint_pk);
  return make(from, to, msg_type::dc_configure, w);
}

dc_configure_msg decode_dc_configure(const net::message& msg) {
  net::wire_reader r{msg.payload};
  dc_configure_msg m;
  m.round_id = r.read_u32();
  m.bins = r.read_u64();
  m.group = r.read_u8();
  m.joint_pk = r.read_bytes();
  r.expect_end();
  return m;
}

net::message encode_report_request(net::node_id from, net::node_id to,
                                   std::uint32_t round_id) {
  net::wire_writer w;
  w.write_u32(round_id);
  return make(from, to, msg_type::report_request, w);
}

net::message encode_vector(net::node_id from, net::node_id to, msg_type type,
                           const vector_msg& m) {
  net::wire_writer w;
  w.write_u32(m.round_id);
  w.write_varint(m.ciphertexts.size());
  for (const auto& ct : m.ciphertexts) w.write_bytes(ct);
  return make(from, to, type, w);
}

vector_msg decode_vector(const net::message& msg) {
  net::wire_reader r{msg.payload};
  vector_msg m;
  m.round_id = r.read_u32();
  const std::uint64_t n = r.read_varint();
  m.ciphertexts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) m.ciphertexts.push_back(r.read_bytes());
  r.expect_end();
  return m;
}

std::vector<byte_buffer> encode_ciphertexts(
    const crypto::elgamal& scheme,
    const std::vector<crypto::elgamal_ciphertext>& cts) {
  return scheme.encode_batch(cts);
}

std::vector<crypto::elgamal_ciphertext> decode_ciphertexts(
    const crypto::elgamal& scheme, const std::vector<byte_buffer>& enc) {
  return scheme.decode_batch(enc);
}

}  // namespace tormet::psc
