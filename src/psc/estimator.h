// Point estimation for PSC: inverts the two distortions between the true
// union cardinality and the decrypted non-identity count —
//   1. binomial noise: each CP added noise_bits Bernoulli(1/2) ones
//      (expected total_noise_bits/2);
//   2. hash collisions: n distinct items occupy
//      E[occ] = b·(1 − (1 − 1/b)^n) of b bins.
// Exact confidence intervals (the paper's §3.3 dynamic-programming
// algorithm) live in stats/psc_ci.h; this header is the cheap point
// estimate used inline by deployments.
#pragma once

#include <cstdint>

namespace tormet::psc {

struct cardinality_estimate {
  std::uint64_t raw_count = 0;     // decrypted non-identity bins+noise slots
  double expected_noise = 0.0;     // total_noise_bits / 2
  double occupied = 0.0;           // noise-corrected occupied bins
  double cardinality = 0.0;        // collision-corrected item count
};

/// Point estimate from a decrypted count. `bins` must be >= 2.
[[nodiscard]] cardinality_estimate estimate_cardinality(
    std::uint64_t raw_count, std::uint64_t bins, std::uint64_t total_noise_bits);

/// Forward model: expected occupied bins for n distinct items in b bins.
[[nodiscard]] double expected_occupancy(double n_items, std::uint64_t bins);

}  // namespace tormet::psc
