// PSC computation party (CP): holds one share of the joint ElGamal key,
// contributes binomial noise bits, mixes (shuffle + rerandomize), and strips
// its decryption share. The union cardinality stays private as long as one
// CP is honest: its shuffle breaks bin/DC linkability and its noise bits
// keep the count differentially private.
//
// The bulk ciphertext work (noise encryption, mix pass, decrypt pass) runs
// through a crypto::batch_engine; attach a shared thread pool with
// set_thread_pool to spread it across workers. Results are deterministic in
// the session RNG regardless of the worker count.
#pragma once

#include <memory>
#include <optional>

#include "src/crypto/batch_engine.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/secure_rng.h"
#include "src/crypto/shuffle.h"
#include "src/net/transport.h"
#include "src/psc/messages.h"
#include "src/util/thread_pool.h"

namespace tormet::psc {

class computation_party {
 public:
  computation_party(net::node_id self, net::node_id tally_server,
                    net::transport& transport, crypto::secure_rng& rng);

  /// Shares `pool` for batch crypto (takes effect at the next configure).
  /// Null reverts to inline execution.
  void set_thread_pool(std::shared_ptr<util::thread_pool> pool);

  void handle_message(const net::message& msg);

  [[nodiscard]] net::node_id id() const noexcept { return self_; }
  /// Transcript of this CP's last mix (verifiable-shuffle substitute).
  [[nodiscard]] const std::optional<crypto::shuffle_transcript>& last_transcript()
      const noexcept {
    return transcript_;
  }

 private:
  void on_configure(const cp_configure_msg& m);
  void on_mix(const net::message& msg);
  void on_decrypt(const net::message& msg);
  [[nodiscard]] net::node_id next_in_chain() const;

  net::node_id self_;
  net::node_id tally_server_;
  net::transport& transport_;
  crypto::secure_rng& rng_;
  std::shared_ptr<util::thread_pool> pool_;

  std::uint32_t round_id_ = 0;
  std::uint64_t noise_bits_ = 0;
  std::vector<net::node_id> cp_chain_;
  std::shared_ptr<const crypto::group> group_;
  std::unique_ptr<crypto::batch_engine> engine_;  // owns the round's elgamal
  crypto::elgamal_keypair keypair_;
  crypto::group_element joint_pk_;  // set when the TS echoes it via dc_configure
  // Once-per-round latches: a retried round attempt can deliver duplicate
  // (byte-identical) mix/decrypt passes; processing one twice would consume
  // the session RNG again and change every downstream byte.
  bool mixed_ = false;
  bool decrypted_ = false;
  std::optional<crypto::shuffle_transcript> transcript_;
};

}  // namespace tormet::psc
