#include "src/psc/computation_party.h"

#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::psc {

computation_party::computation_party(net::node_id self, net::node_id tally_server,
                                     net::transport& transport,
                                     crypto::secure_rng& rng)
    : self_{self}, tally_server_{tally_server}, transport_{transport}, rng_{rng} {}

void computation_party::set_thread_pool(std::shared_ptr<util::thread_pool> pool) {
  pool_ = std::move(pool);
}

void computation_party::on_configure(const cp_configure_msg& m) {
  round_id_ = m.round_id;
  noise_bits_ = m.noise_bits;
  cp_chain_ = m.cp_chain;
  group_ = crypto::make_group(static_cast<crypto::group_backend>(m.group));
  engine_ = std::make_unique<crypto::batch_engine>(group_, pool_);
  keypair_ = engine_->scheme().generate_keypair(rng_);
  transcript_.reset();
  mixed_ = false;
  decrypted_ = false;

  pk_share_msg share;
  share.round_id = round_id_;
  share.pk = group_->encode(keypair_.pub);
  transport_.send(encode_pk_share(self_, tally_server_, share));
}

net::node_id computation_party::next_in_chain() const {
  for (std::size_t i = 0; i < cp_chain_.size(); ++i) {
    if (cp_chain_[i] == self_) {
      return i + 1 < cp_chain_.size() ? cp_chain_[i + 1] : tally_server_;
    }
  }
  throw invariant_error{"this CP is not in the configured chain"};
}

void computation_party::on_mix(const net::message& msg) {
  vector_msg m = decode_vector(msg);
  if (m.round_id != round_id_) return;
  if (mixed_) {
    // Duplicate mix pass from a retried round attempt: mixing again would
    // advance the RNG a second time and break byte-identical recovery.
    log_line{log_level::warn} << "CP " << self_
                              << ": duplicate mix pass for round " << m.round_id
                              << "; dropping";
    return;
  }
  expects(joint_pk_.valid(), "mix pass before joint key distribution");
  mixed_ = true;
  const crypto::elgamal& scheme = engine_->scheme();
  std::vector<crypto::elgamal_ciphertext> cts = engine_->decode_batch(m.ciphertexts);

  // Binomial noise: append noise_bits ciphertexts, each an encryption of a
  // fair coin (identity or random element). Expected added count is
  // noise_bits/2, which the estimator subtracts. Coins come from the session
  // RNG; the encryptions run batched on the engine.
  std::vector<std::uint8_t> coins(noise_bits_);
  for (auto& coin : coins) {
    coin = static_cast<std::uint8_t>(rng_.next_u64() & 1);
  }
  std::vector<crypto::elgamal_ciphertext> noise = engine_->encrypt_bits_batch(
      joint_pk_, coins, crypto::batch_engine::derive_seed(rng_));
  // The wire message already carries every input encoding; only the fresh
  // noise ciphertexts need serializing before the digest.
  std::vector<byte_buffer> encoded = std::move(m.ciphertexts);
  encoded.reserve(encoded.size() + noise.size());
  for (const auto& ct : noise) encoded.push_back(scheme.encode(ct));
  cts.reserve(cts.size() + noise.size());
  std::move(noise.begin(), noise.end(), std::back_inserter(cts));

  crypto::shuffle_transcript transcript;
  crypto::shuffle_result mixed = crypto::shuffle_and_rerandomize_encoded(
      *engine_, joint_pk_, cts, encoded, rng_, transcript);
  transcript_ = transcript;

  vector_msg out;
  out.round_id = round_id_;
  out.ciphertexts = std::move(mixed.output_encoded);
  transport_.send(encode_vector(self_, next_in_chain(), msg_type::mix_pass, out));
}

void computation_party::on_decrypt(const net::message& msg) {
  const vector_msg m = decode_vector(msg);
  if (m.round_id != round_id_) return;
  if (decrypted_) {
    log_line{log_level::warn} << "CP " << self_
                              << ": duplicate decrypt pass for round "
                              << m.round_id << "; dropping";
    return;
  }
  decrypted_ = true;
  const std::vector<crypto::elgamal_ciphertext> cts =
      engine_->decode_batch(m.ciphertexts);
  const std::vector<crypto::elgamal_ciphertext> stripped =
      engine_->strip_share_batch(cts, keypair_.secret);
  vector_msg out;
  out.round_id = round_id_;
  out.ciphertexts = engine_->encode_batch(stripped);
  const net::node_id next = next_in_chain();
  const msg_type type =
      next == tally_server_ ? msg_type::final_vector : msg_type::decrypt_pass;
  transport_.send(encode_vector(self_, next, type, out));
}

void computation_party::handle_message(const net::message& msg) {
  switch (static_cast<msg_type>(msg.type)) {
    case msg_type::cp_configure:
      on_configure(decode_cp_configure(msg));
      return;
    case msg_type::dc_configure: {
      // The TS echoes the combined joint key to CPs with the same message
      // DCs receive.
      const dc_configure_msg m = decode_dc_configure(msg);
      if (m.round_id != round_id_) return;
      joint_pk_ = group_->decode(m.joint_pk);
      return;
    }
    case msg_type::mix_pass:
      on_mix(msg);
      return;
    case msg_type::decrypt_pass:
      on_decrypt(msg);
      return;
    default:
      log_line{log_level::warn} << "CP " << self_ << ": unexpected message type "
                                << msg.type;
  }
}

}  // namespace tormet::psc
