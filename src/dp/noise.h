// Differential-privacy noise mechanisms.
//
//  * Gaussian mechanism (PrivCount): sigma = Δ·sqrt(2·ln(1.25/δ))/ε gives
//    (ε, δ)-DP for an L2/L1 sensitivity-Δ counter (Dwork & Roth, Thm A.1).
//  * Binomial mechanism (PSC): adding n Bernoulli(1/2) bits gives (ε, δ)-DP
//    for a sensitivity-Δ unique count when n ≥ c·ln(2/δ)·(Δ/ε)²; the
//    expected offset n/2 is subtracted by the estimator.
//
// Noise values are secret (they blind real user activity), so samplers draw
// from crypto::secure_rng, not the simulation rng.
#pragma once

#include <cstdint>

#include "src/crypto/secure_rng.h"

namespace tormet::dp {

/// Gaussian-mechanism standard deviation for one (ε_i, δ_i) slice.
[[nodiscard]] double gaussian_sigma(double sensitivity, double epsilon,
                                    double delta);

/// Standard normal via Box–Muller over secure uniforms.
[[nodiscard]] double sample_standard_normal(crypto::secure_rng& rng);

/// Gaussian(0, sigma²) sample.
[[nodiscard]] double sample_gaussian(double sigma, crypto::secure_rng& rng);

/// Gaussian noise rounded to the nearest integer (counters live in Z).
[[nodiscard]] std::int64_t sample_gaussian_integer(double sigma,
                                                   crypto::secure_rng& rng);

/// Number of Bernoulli(1/2) noise bits one noise contributor must add for
/// the binomial mechanism to give (ε, δ)-DP at sensitivity Δ.
/// `constant` is the mechanism's analysis constant (default 8; see header
/// comment). Result is always even so the expected offset n/2 is integral.
[[nodiscard]] std::uint64_t binomial_noise_bits(double sensitivity,
                                                double epsilon, double delta,
                                                double constant = 8.0);

/// Draws Binomial(n, 1/2) via secure bits (exact, O(n/64) words).
[[nodiscard]] std::uint64_t sample_binomial_half(std::uint64_t n,
                                                 crypto::secure_rng& rng);

}  // namespace tormet::dp
