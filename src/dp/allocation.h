// Privacy-budget allocation across the counters of one measurement round
// (PrivCount §3.2 methodology). Given a global (ε, δ) and, for each
// statistic, its sensitivity Δ_i (from the action bounds) and an expected
// magnitude E_i, the allocator splits the budget so every counter gets the
// same *relative* noise:
//
//   σ_i = r·E_i  with  ε_i = Δ_i·√(2 ln(1.25/δ_i))/σ_i,  Σ ε_i = ε,
//   δ_i = δ/k,
//
// which solves to r = Σ_j (Δ_j·c_j/E_j) / ε with c_j = √(2 ln(1.25/δ_j)).
// Equalizing relative noise is PrivCount's published strategy: a counter
// expected to be large can absorb more absolute noise, freeing budget for
// small counters.
#pragma once

#include <string>
#include <vector>

#include "src/dp/action_bounds.h"

namespace tormet::dp {

/// One statistic's allocation request.
struct counter_request {
  std::string name;
  double sensitivity = 1.0;     // Δ_i, from action bounds
  double expected_value = 1.0;  // E_i, operator's estimate of the true count
};

/// One statistic's allocation result.
struct counter_allocation {
  std::string name;
  double sensitivity = 0.0;
  double epsilon = 0.0;  // ε_i slice
  double delta = 0.0;    // δ_i slice
  double sigma = 0.0;    // Gaussian noise std-dev for the aggregate
};

/// Splits (params.epsilon, params.delta) across `requests` with the
/// equal-relative-noise rule. Throws on empty input or non-positive
/// sensitivities/expected values. The returned allocations always compose
/// back to exactly the global budget (Σ ε_i = ε, Σ δ_i = δ).
[[nodiscard]] std::vector<counter_allocation> allocate_budget(
    const privacy_params& params, const std::vector<counter_request>& requests);

/// Uniform split (ε/k to every counter) — the naive baseline the
/// `ablation_noise_allocation` bench compares against.
[[nodiscard]] std::vector<counter_allocation> allocate_budget_uniform(
    const privacy_params& params, const std::vector<counter_request>& requests);

}  // namespace tormet::dp
