#include "src/dp/allocation.h"

#include <cmath>

#include "src/dp/noise.h"
#include "src/util/check.h"

namespace tormet::dp {

namespace {
void validate(const privacy_params& params,
              const std::vector<counter_request>& requests) {
  expects(!requests.empty(), "allocation requires at least one counter");
  expects(params.epsilon > 0.0, "epsilon must be positive");
  expects(params.delta > 0.0 && params.delta < 1.0, "delta must be in (0,1)");
  for (const auto& r : requests) {
    expects(r.sensitivity > 0.0, "sensitivity must be positive");
    expects(r.expected_value > 0.0, "expected value must be positive");
  }
}
}  // namespace

std::vector<counter_allocation> allocate_budget(
    const privacy_params& params, const std::vector<counter_request>& requests) {
  validate(params, requests);
  const auto k = static_cast<double>(requests.size());
  const double delta_i = params.delta / k;
  const double c = std::sqrt(2.0 * std::log(1.25 / delta_i));

  // r = common relative noise level sigma_i / E_i.
  double sum = 0.0;
  for (const auto& req : requests) {
    sum += req.sensitivity * c / req.expected_value;
  }
  const double r = sum / params.epsilon;

  std::vector<counter_allocation> out;
  out.reserve(requests.size());
  for (const auto& req : requests) {
    counter_allocation a;
    a.name = req.name;
    a.sensitivity = req.sensitivity;
    a.delta = delta_i;
    a.sigma = r * req.expected_value;
    a.epsilon = req.sensitivity * c / a.sigma;
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<counter_allocation> allocate_budget_uniform(
    const privacy_params& params, const std::vector<counter_request>& requests) {
  validate(params, requests);
  const auto k = static_cast<double>(requests.size());
  std::vector<counter_allocation> out;
  out.reserve(requests.size());
  for (const auto& req : requests) {
    counter_allocation a;
    a.name = req.name;
    a.sensitivity = req.sensitivity;
    a.epsilon = params.epsilon / k;
    a.delta = params.delta / k;
    a.sigma = gaussian_sigma(req.sensitivity, a.epsilon, a.delta);
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace tormet::dp
