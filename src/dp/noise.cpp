#include "src/dp/noise.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace tormet::dp {

double gaussian_sigma(double sensitivity, double epsilon, double delta) {
  expects(sensitivity >= 0.0, "sensitivity must be non-negative");
  expects(epsilon > 0.0, "epsilon must be positive");
  expects(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  return sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

double sample_standard_normal(crypto::secure_rng& rng) {
  // 53-bit uniforms; reject u1 == 0 for the log.
  double u1 = 0.0;
  do {
    u1 = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  } while (u1 <= 0.0);
  const double u2 = static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double sample_gaussian(double sigma, crypto::secure_rng& rng) {
  expects(sigma >= 0.0, "sigma must be non-negative");
  if (sigma == 0.0) return 0.0;
  return sigma * sample_standard_normal(rng);
}

std::int64_t sample_gaussian_integer(double sigma, crypto::secure_rng& rng) {
  return static_cast<std::int64_t>(std::llround(sample_gaussian(sigma, rng)));
}

std::uint64_t binomial_noise_bits(double sensitivity, double epsilon,
                                  double delta, double constant) {
  expects(sensitivity >= 0.0, "sensitivity must be non-negative");
  expects(epsilon > 0.0, "epsilon must be positive");
  expects(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  expects(constant > 0.0, "mechanism constant must be positive");
  if (sensitivity == 0.0) return 0;
  const double ratio = sensitivity / epsilon;
  const double n = constant * std::log(2.0 / delta) * ratio * ratio;
  auto bits = static_cast<std::uint64_t>(std::ceil(n));
  if (bits % 2 == 1) ++bits;  // even, so the expected offset is integral
  return bits;
}

std::uint64_t sample_binomial_half(std::uint64_t n, crypto::secure_rng& rng) {
  std::uint64_t ones = 0;
  std::uint64_t remaining = n;
  while (remaining >= 64) {
    ones += static_cast<std::uint64_t>(std::popcount(rng.next_u64()));
    remaining -= 64;
  }
  if (remaining > 0) {
    const std::uint64_t mask =
        remaining == 64 ? ~0ULL : ((1ULL << remaining) - 1);
    ones += static_cast<std::uint64_t>(std::popcount(rng.next_u64() & mask));
  }
  return ones;
}

}  // namespace tormet::dp
