#include "src/dp/action_bounds.h"

#include "src/util/check.h"

namespace tormet::dp {

namespace {
constexpr double k_mb = 1e6;  // the paper states bounds in MB
}

action_bounds action_bounds::paper_defaults() {
  action_bounds b;
  b.rows_ = {
      {action::connect_to_domain, 20, "Web"},
      {action::exit_data_bytes, 400 * k_mb, "Web"},
      {action::connect_from_new_ip, 4, "N/A"},
      {action::connect_from_new_ip_multiday, 3, "N/A"},
      {action::create_tcp_connection, 12, "N/A"},
      {action::create_entry_circuit, 651, "Chat"},
      {action::entry_data_bytes, 407 * k_mb, "Web"},
      {action::upload_descriptor, 450, "Onionsite"},
      {action::upload_new_onion_address, 3, "Onionsite"},
      {action::fetch_descriptor, 30, "Onionsite"},
      {action::create_rendezvous_connection, 180, "Chat"},
      {action::rendezvous_data_bytes, 400 * k_mb, "Web or onionsite"},
  };
  return b;
}

action_bounds action_bounds::scaled(double factor) const {
  expects(factor > 0.0, "scale factor must be positive");
  action_bounds out = *this;
  for (auto& row : out.rows_) row.daily_bound *= factor;
  return out;
}

double action_bounds::bound(action kind) const {
  for (const auto& row : rows_) {
    if (row.kind == kind) return row.daily_bound;
  }
  throw precondition_error{"action not present in bounds table"};
}

double action_bounds::bound_over_days(action kind, int days) const {
  expects(days >= 1, "measurement must span at least one day");
  if (kind == action::connect_from_new_ip && days > 1) {
    // Paper: 4 IPs the first day, 3 per additional day.
    return bound(action::connect_from_new_ip) +
           (days - 1) * bound(action::connect_from_new_ip_multiday);
  }
  return days * bound(kind);
}

std::string to_string(action kind) {
  switch (kind) {
    case action::connect_to_domain: return "connect-to-domain";
    case action::exit_data_bytes: return "exit-data-bytes";
    case action::connect_from_new_ip: return "connect-from-new-ip";
    case action::connect_from_new_ip_multiday: return "connect-from-new-ip-multiday";
    case action::create_tcp_connection: return "create-tcp-connection";
    case action::create_entry_circuit: return "create-entry-circuit";
    case action::entry_data_bytes: return "entry-data-bytes";
    case action::upload_descriptor: return "upload-descriptor";
    case action::upload_new_onion_address: return "upload-new-onion-address";
    case action::fetch_descriptor: return "fetch-descriptor";
    case action::create_rendezvous_connection: return "create-rendezvous-connection";
    case action::rendezvous_data_bytes: return "rendezvous-data-bytes";
  }
  return "unknown-action";
}

}  // namespace tormet::dp
