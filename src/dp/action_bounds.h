// The paper's Table 1: per-24-hour action bounds defining adjacency for the
// differential-privacy guarantee. Two network traces are adjacent when they
// differ only in one user's activity and that difference stays within these
// bounds; the DP mechanisms then make adjacent traces indistinguishable.
//
// Each bound records the paper's defining activity (the reasonable daily
// behaviour that maximizes the observable action count).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tormet::dp {

/// The observable user actions the paper protects (Table 1 rows).
enum class action {
  connect_to_domain,        // exit circuit connects to a web domain
  exit_data_bytes,          // data sent/received on exit streams
  connect_from_new_ip,      // distinct client IPs seen at guards (1 day)
  connect_from_new_ip_multiday,  // distinct client IPs per day, 2+ day rounds
  create_tcp_connection,    // TCP connections to guards
  create_entry_circuit,     // circuits through an entry guard
  entry_data_bytes,         // data sent/received at the entry position
  upload_descriptor,        // onion-service descriptor uploads
  upload_new_onion_address, // distinct onion addresses in uploads
  fetch_descriptor,         // onion-service descriptor fetches
  create_rendezvous_connection,  // rendezvous circuits
  rendezvous_data_bytes,    // data on rendezvous circuits
};

/// One Table-1 row.
struct action_bound {
  action kind;
  double daily_bound;            // maximum protected daily activity
  std::string defining_activity; // "Web", "Chat", "Onionsite", or "N/A"
};

/// The full action-bound table with the paper's values (Table 1).
class action_bounds {
 public:
  /// Paper defaults: 20 domains, 400 MB exit data, 4 IPs (1 day) / 3 IPs
  /// (multi-day), 12 TCP connections, 651 circuits, 407 MB entry data,
  /// 450 descriptor uploads, 3 onion addresses, 30 fetches, 180 rendezvous
  /// connections, 400 MB rendezvous data.
  [[nodiscard]] static action_bounds paper_defaults();

  /// Returns a copy with every bound multiplied by `factor`. Used by the
  /// simulated deployment (DESIGN.md §6): at reduced network scale the
  /// absolute noise of unscaled bounds would swamp every counter, so bounds
  /// scale with the network to preserve the deployment's signal-to-noise.
  [[nodiscard]] action_bounds scaled(double factor) const;

  /// The daily bound for an action. Throws if the action is not in the table.
  [[nodiscard]] double bound(action kind) const;

  /// A bound over a multi-day measurement: `days` * daily bound, with the
  /// paper's special case for new-IP counting (4 the first day, 3 per day
  /// thereafter).
  [[nodiscard]] double bound_over_days(action kind, int days) const;

  [[nodiscard]] const std::vector<action_bound>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<action_bound> rows_;
};

/// Human-readable action name (for tables and logs).
[[nodiscard]] std::string to_string(action kind);

/// Global privacy parameters. The paper uses epsilon = 0.3 (the value Tor
/// uses for onion-service statistics) and delta = 1e-11 (so delta/n stays
/// small for n ~ 1e6+ users).
struct privacy_params {
  double epsilon = 0.3;
  double delta = 1e-11;
};

}  // namespace tormet::dp
