// Transport abstraction for the measurement protocols. PrivCount and PSC
// nodes (tally server, data collectors, share keepers, computation parties)
// exchange typed messages through a transport; the protocol logic never
// depends on whether the transport is the deterministic in-process bus or
// real sockets.
#pragma once

#include <cstdint>
#include <functional>

#include "src/util/bytes.h"

namespace tormet::net {

/// Endpoint identifier within one deployment (assigned by configuration).
using node_id = std::uint32_t;

/// A routed protocol message.
struct message {
  node_id from = 0;
  node_id to = 0;
  std::uint16_t type = 0;
  byte_buffer payload;
};

/// Receives messages addressed to one node.
using message_handler = std::function<void(const message&)>;

/// Message-passing fabric connecting a deployment's nodes.
class transport {
 public:
  virtual ~transport() = default;

  /// Registers the handler for a node. A node must be registered before it
  /// can receive; registering twice replaces the handler.
  virtual void register_node(node_id id, message_handler handler) = 0;

  /// Queues `msg` for delivery to `msg.to`. Ordering is FIFO per sender-
  /// receiver pair on every implementation.
  virtual void send(message msg) = 0;

  /// Delivers queued messages until quiescent (no messages in flight).
  /// Returns the number of messages delivered.
  virtual std::size_t run_until_quiescent() = 0;
};

}  // namespace tormet::net
