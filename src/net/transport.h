// Transport abstraction for the measurement protocols. PrivCount and PSC
// nodes (tally server, data collectors, share keepers, computation parties)
// exchange typed messages through a transport; the protocol logic never
// depends on whether the transport is the deterministic in-process bus or
// real sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "src/util/bytes.h"

namespace tormet::net {

/// Endpoint identifier within one deployment (assigned by configuration).
using node_id = std::uint32_t;

/// Thrown on transport-level failures: connect deadline exhausted, a
/// run_until/quiescence deadline expiring, or sending through a broken
/// fabric. Distinct from wire_error (malformed frames from a peer).
class transport_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A routed protocol message.
struct message {
  node_id from = 0;
  node_id to = 0;
  std::uint16_t type = 0;
  byte_buffer payload;
};

/// Receives messages addressed to one node.
using message_handler = std::function<void(const message&)>;

/// Message-passing fabric connecting a deployment's nodes.
class transport {
 public:
  virtual ~transport() = default;

  /// Registers the handler for a node. A node must be registered before it
  /// can receive; registering twice replaces the handler.
  virtual void register_node(node_id id, message_handler handler) = 0;

  /// Queues `msg` for delivery to `msg.to`. Ordering is FIFO per sender-
  /// receiver pair on every implementation.
  virtual void send(message msg) = 0;

  /// Delivers queued messages until quiescent (no messages in flight).
  /// Returns the number of messages delivered.
  virtual std::size_t run_until_quiescent() = 0;

  /// Delivers messages until `done()` returns true. This is the explicit
  /// completion primitive for protocol phases: the caller names the state
  /// it is waiting for instead of inferring completion from fabric idleness.
  /// Throws transport_error if `deadline_ms` elapses with the predicate
  /// still false. The default implementation (exact for the synchronous
  /// in-process bus) drains the fabric and re-checks the predicate.
  virtual void run_until(const std::function<bool()>& done, int deadline_ms) {
    (void)deadline_ms;
    for (int pass = 0; pass < 2; ++pass) {
      if (done()) return;
      run_until_quiescent();
    }
    if (!done()) {
      throw transport_error{
          "run_until: fabric quiescent but completion predicate is false"};
    }
  }
};

}  // namespace tormet::net
