#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>

#include "src/net/wire.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::net {

namespace {

using clock = std::chrono::steady_clock;

constexpr std::uint8_t k_flag_final = 0x01;  // last chunk of a message
constexpr std::size_t k_frame_header_bytes = 5;

/// Protocol-level chunk bound: receivers accept chunks up to this size
/// regardless of their own max_chunk_bytes, so two fabrics configured
/// with different chunk sizes still interoperate (the sender's chunking
/// granularity is a sender-side choice; the receiver only enforces the
/// reassembled-message bound).
constexpr std::size_t k_max_chunk_wire = 16u << 20;

/// Resend attempts per message before the io loop declares the channel
/// broken. Transient failures (peer restart, dropped link) succeed on the
/// first or second retry; a peer that *keeps* rejecting our frames would
/// otherwise loop reconnect-and-resend forever.
constexpr int k_max_write_attempts = 8;

void throw_errno(const char* what) {
  throw transport_error{std::string{what} + ": " + std::strerror(errno)};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Epoch and sequence lead the body so the dedup decision needs no payload
/// parsing beyond the fixed-size head.
[[nodiscard]] byte_buffer encode_body(const message& msg, std::uint64_t epoch,
                                      std::uint64_t seq) {
  wire_writer w;
  w.write_u64(epoch);
  w.write_u64(seq);
  w.write_u32(msg.from);
  w.write_u32(msg.to);
  w.write_u16(msg.type);
  w.write_bytes(msg.payload);
  return w.take();
}

struct decoded_frame {
  message msg;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

[[nodiscard]] decoded_frame decode_body(byte_view body) {
  wire_reader r{body};
  decoded_frame f;
  f.epoch = r.read_u64();
  f.seq = r.read_u64();
  f.msg.from = r.read_u32();
  f.msg.to = r.read_u32();
  f.msg.type = r.read_u16();
  f.msg.payload = r.read_bytes();
  r.expect_end();
  return f;
}

/// Frames `body` into the chunked wire format with every 5-byte chunk
/// header interleaved in ONE flat buffer, so a partially written message
/// resumes from a plain byte offset after EAGAIN — never from a chunk
/// boundary.
[[nodiscard]] byte_buffer frame_body(byte_view body, std::size_t max_chunk,
                                     std::size_t& chunks_out) {
  const std::size_t n_chunks =
      body.empty() ? 1 : (body.size() + max_chunk - 1) / max_chunk;
  byte_buffer wire;
  wire.reserve(body.size() + n_chunks * k_frame_header_bytes);
  std::size_t off = 0;
  do {
    const std::size_t chunk = std::min(max_chunk, body.size() - off);
    const bool final_chunk = off + chunk == body.size();
    wire.push_back(final_chunk ? k_flag_final : 0);
    for (int i = 0; i < 4; ++i) {
      wire.push_back(static_cast<std::uint8_t>(chunk >> (8 * i)));
    }
    wire.insert(wire.end(), body.begin() + static_cast<std::ptrdiff_t>(off),
                body.begin() + static_cast<std::ptrdiff_t>(off + chunk));
    off += chunk;
  } while (off < body.size());
  chunks_out = n_chunks;
  return wire;
}

/// Random per-process fabric epoch (never zero so tests can use 0 as a
/// distinct foreign epoch).
[[nodiscard]] std::uint64_t make_epoch() {
  std::random_device rd;
  const std::uint64_t e =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  return e == 0 ? 1 : e;
}

/// Approximate fabric bytes one queued message occupies (for backpressure).
[[nodiscard]] std::size_t queue_cost(const message& msg) noexcept {
  return msg.payload.size() + 64;
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

[[nodiscard]] tcp_options sanitize(tcp_options o) {
  o.max_chunk_bytes = std::clamp<std::size_t>(o.max_chunk_bytes, 1, k_max_chunk_wire);
  // A zero queue limit would make the very first send() block forever
  // (0 < 0 never holds); every failure mode here must stay deadline-bounded.
  o.send_queue_limit_bytes = std::max<std::size_t>(o.send_queue_limit_bytes, 1);
  return o;
}

}  // namespace

struct tcp_net::listener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// One outbound destination: a bounded message queue plus the io thread's
/// connection and partial-write state. Senders touch only the queue side
/// (under `m`); every field below the marker is mutated by the io thread
/// alone (still under `m`, so drop_connections_to and send can read fd /
/// reset the repair state safely).
struct tcp_net::channel {
  struct queued_msg {
    message msg;
    std::uint64_t seq = 0;  // assigned under `m` at enqueue: queue order == seq order
  };

  node_id dest = 0;
  std::mutex m;
  std::condition_variable cv_space;  // senders: queue fell below the limit
  std::deque<queued_msg> queue;
  std::size_t queued_bytes = 0;  // includes the message being written
  std::uint64_t next_seq = 1;    // 0 is the receiver's "nothing seen" state
  bool stop = false;
  bool broken = false;  // connect deadline exhausted: sends now fail

  // -- io-thread connection state --
  int fd = -1;
  bool connecting = false;    // non-blocking connect in flight
  bool cycle_active = false;  // a connect cycle (one deadline) is running
  bool backoff = false;       // waiting retry_at before the next attempt
  bool registered = false;    // fd present in the epoll set
  bool armed = false;         // epoll registration includes EPOLLOUT
  clock::time_point conn_deadline{};
  clock::time_point retry_at{};
  sockaddr_in addr{};         // resolved peer address for the current cycle
  byte_buffer wire;           // framed current message (headers interleaved)
  std::size_t wire_off = 0;
  std::size_t wire_chunks = 0;
  std::size_t cur_cost = 0;
  int attempts = 0;           // failed write attempts for the current message
};

/// One fd in the epoll set: the wake eventfd, a listener, an accepted
/// inbound connection (with its chunk-reassembly state machine), or an
/// outbound channel socket.
struct tcp_net::io_entry {
  enum class kind : std::uint8_t { wake, listen, inbound, outbound };
  kind k = kind::inbound;
  int fd = -1;
  // Inbound reassembly: 5-byte header, then chunk bytes appended straight
  // onto the growing message assembly.
  std::uint8_t header[k_frame_header_bytes] = {};
  std::size_t header_got = 0;
  bool in_chunk = false;
  std::uint8_t flags = 0;
  std::size_t chunk_remaining = 0;
  byte_buffer assembly;
  // Outbound back-pointer.
  std::shared_ptr<channel> ch;
};

tcp_net::tcp_net() : tcp_net(tcp_options{}) {}

tcp_net::tcp_net(tcp_options opts)
    : opts_{sanitize(opts)}, peers_{}, distributed_{false}, epoch_{make_epoch()} {
  start_io();
}

tcp_net::tcp_net(std::map<node_id, tcp_endpoint> peers, tcp_options opts)
    : opts_{sanitize(opts)},
      peers_{std::move(peers)},
      distributed_{true},
      epoch_{make_epoch()} {
  expects(!peers_.empty(), "distributed fabric needs a peer map");
  start_io();
}

void tcp_net::start_io() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  auto entry = std::make_unique<io_entry>();
  entry->k = io_entry::kind::wake;
  entry->fd = wake_fd_;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = entry.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  io_entries_[wake_fd_] = std::move(entry);
  io_thread_ = std::thread{[this] { io_loop(); }};
}

void tcp_net::wake_io() const {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void tcp_net::register_node(node_id id, message_handler handler) {
  expects(handler != nullptr, "handler must be callable");
  std::lock_guard lock{mutex_};
  handlers_[id] = std::move(handler);
  if (listeners_.contains(id)) return;

  std::uint16_t want_port = 0;
  if (distributed_) {
    const auto it = peers_.find(id);
    expects(it != peers_.end(), "registered node missing from the peer map");
    want_port = it->second.port;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(distributed_ ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(want_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, 256) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  set_nonblocking(fd);

  auto lst = std::make_unique<listener>();
  lst->fd = fd;
  lst->port = ntohs(addr.sin_port);
  listeners_[id] = std::move(lst);
  pending_listener_fds_.push_back(fd);
  wake_io();
}

// -- io loop ------------------------------------------------------------------

void tcp_net::io_loop() {
  std::vector<epoll_event> events(128);
  std::vector<std::shared_ptr<channel>> chs;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;

    // Pick up listeners bound since the last pass and snapshot the channel
    // set (channels are created by senders, serviced only here).
    std::vector<int> fresh;
    {
      std::lock_guard lock{mutex_};
      fresh.swap(pending_listener_fds_);
      chs.clear();
      chs.reserve(channels_.size());
      for (const auto& [id, ch] : channels_) chs.push_back(ch);
    }
    for (const int fd : fresh) io_add_listener(fd);

    // Advance every channel's state machine (connects, retries, pending
    // writes) and find the earliest timer for the wait below.
    auto next_timer = clock::time_point::max();
    for (const auto& ch : chs) {
      io_service_channel(ch);
      std::lock_guard lk{ch->m};
      if (ch->backoff) next_timer = std::min(next_timer, ch->retry_at);
      if (ch->connecting) next_timer = std::min(next_timer, ch->conn_deadline);
    }

    int timeout_ms = -1;
    if (next_timer != clock::time_point::max()) {
      const auto now = clock::now();
      timeout_ms =
          next_timer <= now
              ? 0
              : static_cast<int>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        next_timer - now)
                        .count() +
                    1);
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd torn down — shutting down
    }
    for (int i = 0; i < n; ++i) {
      auto* entry = static_cast<io_entry*>(events[i].data.ptr);
      switch (entry->k) {
        case io_entry::kind::wake: {
          std::uint64_t buf = 0;
          while (::read(wake_fd_, &buf, sizeof buf) > 0) {
          }
          break;
        }
        case io_entry::kind::listen:
          io_accept(*entry);
          break;
        case io_entry::kind::inbound:
          io_read(*entry);
          break;
        case io_entry::kind::outbound:
          // EPOLLOUT only re-triggers the service pass at the loop top
          // (connect completion / EAGAIN resumption live in the channel
          // state machine). Readability or HUP on this simplex link means
          // the peer closed — handle that eagerly.
          if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) !=
              0) {
            io_peer_closed(*entry);
          }
          break;
      }
    }
  }
}

void tcp_net::io_add_listener(int fd) {
  auto entry = std::make_unique<io_entry>();
  entry->k = io_entry::kind::listen;
  entry->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = entry.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  io_entries_[fd] = std::move(entry);
}

void tcp_net::io_accept(const io_entry& lst) {
  for (;;) {
    const int conn = ::accept(lst.fd, nullptr, nullptr);
    if (conn < 0) return;  // EAGAIN (drained) or listener torn down
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn);
      return;
    }
    set_nonblocking(conn);
    auto entry = std::make_unique<io_entry>();
    entry->k = io_entry::kind::inbound;
    entry->fd = conn;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.ptr = entry.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn, &ev);
    io_entries_[conn] = std::move(entry);
  }
}

void tcp_net::io_drop_entry(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  io_entries_.erase(fd);
}

/// Feeds readiness into the inbound chunk-reassembly state machine:
/// header[5] -> chunk bytes appended to the assembly -> on a final-flagged
/// chunk, decode and enqueue. A connection cut mid-frame discards the
/// partial assembly — the sender re-sends the whole message after
/// reconnecting.
void tcp_net::io_read(io_entry& conn) {
  for (;;) {
    if (!conn.in_chunk) {
      const ssize_t n =
          ::recv(conn.fd, conn.header + conn.header_got,
                 k_frame_header_bytes - conn.header_got, 0);
      if (n == 0) return io_drop_entry(conn.fd);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        return io_drop_entry(conn.fd);
      }
      conn.header_got += static_cast<std::size_t>(n);
      if (conn.header_got < k_frame_header_bytes) continue;
      conn.header_got = 0;
      conn.flags = conn.header[0];
      std::uint32_t chunk_len = 0;
      for (int i = 3; i >= 0; --i) chunk_len = (chunk_len << 8) | conn.header[1 + i];
      if (chunk_len > k_max_chunk_wire ||
          conn.assembly.size() + chunk_len > opts_.max_message_bytes) {
        log_line{log_level::warn}
            << "tcp_net: oversized frame from peer (" << chunk_len
            << " B chunk); dropping connection";
        return io_drop_entry(conn.fd);
      }
      conn.in_chunk = true;
      conn.chunk_remaining = chunk_len;
      // One resize per chunk; the fill position is derived as
      // size() - chunk_remaining (a cut connection discards the whole
      // assembly, so the uninitialized tail never leaks).
      conn.assembly.resize(conn.assembly.size() + chunk_len);
    }
    while (conn.chunk_remaining > 0) {
      const std::size_t fill = conn.assembly.size() - conn.chunk_remaining;
      const ssize_t n =
          ::recv(conn.fd, conn.assembly.data() + fill, conn.chunk_remaining, 0);
      if (n == 0) return io_drop_entry(conn.fd);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        return io_drop_entry(conn.fd);
      }
      conn.chunk_remaining -= static_cast<std::size_t>(n);
    }
    conn.in_chunk = false;
    if ((conn.flags & k_flag_final) != 0) {
      try {
        decoded_frame f = decode_body(conn.assembly);
        conn.assembly.clear();
        messages_received_.fetch_add(1, std::memory_order_relaxed);
        enqueue(std::move(f.msg), f.epoch, f.seq);
      } catch (const wire_error&) {
        log_line{log_level::warn}
            << "tcp_net: malformed message; dropping connection";
        return io_drop_entry(conn.fd);
      }
    }
  }
}

/// (Re)registers the channel's socket in the epoll set. Outbound sockets
/// always watch EPOLLIN|EPOLLRDHUP (peer-death detection on a simplex
/// link); `want_out` toggles EPOLLOUT on top (connect completion / EAGAIN
/// resumption).
void tcp_net::io_arm(channel& ch, bool want_out) {
  if (ch.fd < 0) return;
  const auto it = io_entries_.find(ch.fd);
  if (it == io_entries_.end()) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | (want_out ? EPOLLOUT : 0u);
  ev.data.ptr = it->second.get();
  if (!ch.registered) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, ch.fd, &ev);
    ch.registered = true;
  } else if (want_out != ch.armed) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, ch.fd, &ev);
  }
  ch.armed = want_out;
}

void tcp_net::io_start_connect(const std::shared_ptr<channel>& chp) {
  channel& ch = *chp;
  // One connect cycle spans every retry until the deadline; a fresh cycle
  // (fresh deadline) begins after a successful connection is later lost.
  const auto now = clock::now();
  if (!ch.cycle_active) {
    ch.cycle_active = true;
    ch.conn_deadline = now + std::chrono::milliseconds{opts_.connect_deadline_ms};
  }

  tcp_endpoint ep;
  try {
    ep = address_of(ch.dest);
  } catch (const std::exception&) {
    ch.backoff = true;
    ch.retry_at = now + std::chrono::milliseconds{opts_.connect_retry_ms};
    return;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(ep.port);
  if (::getaddrinfo(ep.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    if (res != nullptr) ::freeaddrinfo(res);
    ch.backoff = true;
    ch.retry_at = now + std::chrono::milliseconds{opts_.connect_retry_ms};
    return;
  }
  std::memcpy(&ch.addr, res->ai_addr, std::min(sizeof ch.addr,
                                               std::size_t{res->ai_addrlen}));
  ::freeaddrinfo(res);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    ch.backoff = true;
    ch.retry_at = now + std::chrono::milliseconds{opts_.connect_retry_ms};
    return;
  }
  auto entry = std::make_unique<io_entry>();
  entry->k = io_entry::kind::outbound;
  entry->fd = fd;
  entry->ch = chp;
  io_entries_[fd] = std::move(entry);
  ch.fd = fd;
  ch.registered = false;
  ch.armed = false;

  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&ch.addr), sizeof ch.addr);
  if (rc == 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ch.cycle_active = false;
    io_arm(ch, false);  // watch for peer death from the start
    return;
  }
  if (errno == EINPROGRESS) {
    ch.connecting = true;
    io_arm(ch, true);
    return;
  }
  // Synchronous refusal: retry on the timer until the cycle deadline.
  io_drop_entry(fd);
  ch.fd = -1;
  ch.registered = false;
  ch.armed = false;
  if (clock::now() >= ch.conn_deadline) {
    ch.cycle_active = false;
    ch.broken = true;  // flag checked by the caller via io_fail path
  } else {
    ch.backoff = true;
    ch.retry_at = clock::now() + std::chrono::milliseconds{opts_.connect_retry_ms};
  }
}

/// Polls an in-flight non-blocking connect by re-calling connect(2):
/// EISCONN/0 means established, EALREADY/EINPROGRESS still pending,
/// anything else carries the failure.
void tcp_net::io_check_connect(channel& ch) {
  const int rc =
      ::connect(ch.fd, reinterpret_cast<const sockaddr*>(&ch.addr), sizeof ch.addr);
  if (rc == 0 || errno == EISCONN) {
    const int one = 1;
    ::setsockopt(ch.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ch.connecting = false;
    ch.cycle_active = false;
    io_arm(ch, false);
    return;
  }
  if (errno == EALREADY || errno == EINPROGRESS) {
    if (clock::now() >= ch.conn_deadline) {
      io_drop_entry(ch.fd);
      ch.fd = -1;
      ch.registered = false;
      ch.armed = false;
      ch.connecting = false;
      ch.cycle_active = false;
      ch.broken = true;
    }
    return;
  }
  // Connect failed (refused/reset): drop the socket, retry until deadline.
  io_drop_entry(ch.fd);
  ch.fd = -1;
  ch.registered = false;
  ch.armed = false;
  ch.connecting = false;
  if (clock::now() >= ch.conn_deadline) {
    ch.cycle_active = false;
    ch.broken = true;
  } else {
    ch.backoff = true;
    ch.retry_at = clock::now() + std::chrono::milliseconds{opts_.connect_retry_ms};
  }
}

/// A write failed on an established connection: drop the socket and either
/// resend the whole message on a fresh connection or give up after
/// k_max_write_attempts.
void tcp_net::io_fail_connection(channel& ch, bool& gave_up) {
  io_drop_entry(ch.fd);
  ch.fd = -1;
  ch.registered = false;
  ch.armed = false;
  ch.cycle_active = false;  // the reconnect gets a fresh deadline
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  ch.wire_off = 0;  // whole-message resend
  // Re-service immediately: without a timer the epoll wait could sleep
  // indefinitely with this message still queued (no readiness event is
  // coming for a closed socket).
  ch.backoff = true;
  ch.retry_at = clock::now();
  if (++ch.attempts >= k_max_write_attempts) gave_up = true;
}

void tcp_net::io_peer_closed(io_entry& entry) {
  const std::shared_ptr<channel> ch = entry.ch;
  if (ch == nullptr) return;
  bool gave_up = false;
  {
    std::lock_guard lk{ch->m};
    if (ch->fd != entry.fd || ch->fd < 0) return;
    if (ch->connecting) return;  // failed connects go through io_check_connect
    if (!ch->wire.empty() || !ch->queue.empty()) {
      // Mid-message (or more queued): reconnect and resend from the start.
      io_fail_connection(*ch, gave_up);
    } else {
      // Idle connection to a gone peer: drop it quietly so the next send
      // dials fresh (a restarted peer listens on the same port but this
      // socket will never carry another byte).
      io_drop_entry(ch->fd);
      ch->fd = -1;
      ch->registered = false;
      ch->armed = false;
      ch->cycle_active = false;
    }
  }
  if (gave_up) io_give_up(ch);
}

void tcp_net::io_write_pending(channel& ch, bool& completed, bool& gave_up) {
  for (;;) {
    if (ch.wire.empty()) {
      if (ch.queue.empty()) {
        io_arm(ch, false);
        return;
      }
      const channel::queued_msg& next = ch.queue.front();
      const byte_buffer body = encode_body(next.msg, epoch_, next.seq);
      ch.wire = frame_body(body, opts_.max_chunk_bytes, ch.wire_chunks);
      ch.wire_off = 0;
      ch.cur_cost = queue_cost(next.msg);
    }
    while (ch.wire_off < ch.wire.size()) {
      const ssize_t n =
          ::send(ch.fd, ch.wire.data() + ch.wire_off,
                 ch.wire.size() - ch.wire_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          io_arm(ch, true);  // resume from wire_off on the next readiness
          return;
        }
        io_fail_connection(ch, gave_up);
        return;
      }
      ch.wire_off += static_cast<std::size_t>(n);
    }
    // Message fully on the wire.
    chunks_sent_.fetch_add(ch.wire_chunks, std::memory_order_relaxed);
    ch.wire.clear();
    ch.wire_off = 0;
    ch.queue.pop_front();
    ch.queued_bytes -= ch.cur_cost;
    ch.cur_cost = 0;
    ch.attempts = 0;
    completed = true;
  }
}

void tcp_net::io_service_channel(const std::shared_ptr<channel>& ch) {
  bool completed = false;
  bool gave_up = false;
  {
    std::lock_guard lk{ch->m};
    if (ch->stop || ch->broken) {
      // Broken channels sit idle until repair_broken resets them in send().
      if (ch->broken && (ch->connecting || ch->backoff)) {
        ch->connecting = false;
        ch->backoff = false;
      }
    } else {
      const auto now = clock::now();
      if (ch->backoff && now >= ch->retry_at) ch->backoff = false;
      if (ch->connecting) io_check_connect(*ch);
      const bool has_work = !ch->queue.empty() || !ch->wire.empty();
      if (!ch->broken && !ch->connecting && !ch->backoff && has_work &&
          ch->fd < 0 && !stopping_.load(std::memory_order_acquire)) {
        io_start_connect(ch);
      }
      if (!ch->broken && !ch->connecting && !ch->backoff && ch->fd >= 0 &&
          has_work) {
        io_write_pending(*ch, completed, gave_up);
      }
      // A connect cycle that exhausted its deadline marks broken above;
      // fold it into the give-up path (drop the queue, notify waiters).
      if (ch->broken) {
        ch->broken = false;  // io_give_up re-derives it from ch->stop
        gave_up = true;
      }
    }
  }
  if (completed) {
    ch->cv_space.notify_all();
    if (distributed_) {
      // Distributed run_until_quiescent() watches channel queues drain.
      // The empty critical section orders this notify after a waiter that
      // just inspected the queues has reached wait_until, so the drain is
      // never missed.
      { std::lock_guard lock{mutex_}; }
      inbox_cv_.notify_all();
    }
  }
  if (gave_up) io_give_up(ch);
}

/// Connect deadline exhausted or resend attempts spent: drop everything
/// queued, mark the channel broken (unless stopping), and wake every
/// waiter — the same semantics a dedicated writer thread's give-up path
/// had.
void tcp_net::io_give_up(const std::shared_ptr<channel>& ch) {
  std::size_t dropped = 0;
  bool was_stop = false;
  {
    std::lock_guard lk{ch->m};
    was_stop = ch->stop;
    ch->broken = !was_stop;
    dropped = ch->queue.size();
    ch->queue.clear();
    ch->queued_bytes = 0;
    ch->wire.clear();
    ch->wire_off = 0;
    ch->cur_cost = 0;
    ch->attempts = 0;
    ch->connecting = false;
    ch->cycle_active = false;
    ch->backoff = false;
    if (ch->fd >= 0) {
      io_drop_entry(ch->fd);
      ch->fd = -1;
      ch->registered = false;
      ch->armed = false;
    }
  }
  ch->cv_space.notify_all();
  {
    std::lock_guard lock{mutex_};
    if (!distributed_) in_flight_ -= static_cast<std::int64_t>(dropped);
  }
  inbox_cv_.notify_all();
  if (!was_stop) {
    log_line{log_level::warn}
        << "tcp_net: destination " << ch->dest
        << " unreachable past the connect deadline; dropped " << dropped
        << " queued message(s)";
    // Channel stays alive (broken) to reject later sends until shutdown.
  }
}

// -- sender-side API ----------------------------------------------------------

void tcp_net::enqueue(message msg, std::uint64_t epoch, std::uint64_t seq) {
  {
    std::lock_guard lock{mutex_};
    // Exactly-once: whole messages are resent after a reconnect, so a
    // message fully written before the cut can arrive twice. Sequence
    // numbers increase monotonically per (epoch, destination) channel and
    // connections deliver in order, so anything at or below the high-water
    // mark was already delivered. A dropped duplicate must NOT decrement
    // in_flight_ — its first arrival already balanced the send.
    std::uint64_t& max_seen = seen_seq_[{epoch, msg.to}];
    if (seq <= max_seen) {
      duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    max_seen = seq;
    inbox_.push_back(std::move(msg));
    if (!distributed_) --in_flight_;
  }
  inbox_cv_.notify_all();
}

tcp_endpoint tcp_net::address_of(node_id id) const {
  if (distributed_) {
    const auto it = peers_.find(id);
    expects(it != peers_.end(), "destination node missing from the peer map");
    return it->second;
  }
  std::lock_guard lock{mutex_};
  const auto it = listeners_.find(id);
  expects(it != listeners_.end(), "destination node is not registered");
  return tcp_endpoint{"127.0.0.1", it->second->port};
}

std::shared_ptr<tcp_net::channel> tcp_net::channel_to(node_id id) {
  std::lock_guard lock{mutex_};
  expects(!stopping_.load(), "send on a stopping fabric");
  const auto cached = channels_.find(id);
  if (cached != channels_.end()) return cached->second;

  if (distributed_) {
    expects(peers_.contains(id), "destination node missing from the peer map");
  } else {
    expects(listeners_.contains(id), "destination node is not registered");
  }

  auto ch = std::make_shared<channel>();
  ch->dest = id;
  channels_[id] = ch;
  return ch;
}

void tcp_net::send(message msg) {
  // Fail oversized messages at the sender instead of letting the receiver
  // reject the frame as malformed (which would read as a link failure).
  if (queue_cost(msg) > opts_.max_message_bytes) {
    throw transport_error{"send: message exceeds max_message_bytes"};
  }
  const std::shared_ptr<channel> ch = channel_to(msg.to);

  if (!distributed_) {
    std::lock_guard lock{mutex_};
    ++in_flight_;
  }

  bool rejected = false;
  {
    std::unique_lock lk{ch->m};
    // Durable deployments re-arm a broken channel: the peer may just be
    // restarting, and its supervisor will bring the listener back. The io
    // loop starts a fresh connect cycle (fresh deadline) for it.
    if (opts_.repair_broken && ch->broken) {
      ch->broken = false;
      ch->attempts = 0;
      ch->cycle_active = false;
    }
    ch->cv_space.wait(lk, [&] {
      return ch->stop || ch->broken ||
             ch->queued_bytes < opts_.send_queue_limit_bytes;
    });
    if (ch->stop || ch->broken) {
      rejected = true;
    } else {
      ch->queued_bytes += queue_cost(msg);
      atomic_max(peak_queue_bytes_, ch->queued_bytes);
      ch->queue.push_back(channel::queued_msg{std::move(msg), ch->next_seq++});
    }
  }
  if (rejected) {
    if (!distributed_) {
      std::lock_guard lock{mutex_};
      --in_flight_;
    }
    inbox_cv_.notify_all();
    throw transport_error{"send: destination channel is broken or stopping"};
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  wake_io();
}

std::size_t tcp_net::run_until_quiescent() {
  const auto deadline =
      clock::now() + std::chrono::milliseconds{opts_.quiescence_deadline_ms};
  std::size_t delivered = 0;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (!inbox_.empty()) {
      message msg = std::move(inbox_.front());
      inbox_.pop_front();
      const auto it = handlers_.find(msg.to);
      message_handler handler = it != handlers_.end() ? it->second : nullptr;
      lock.unlock();
      if (handler) {
        handler(msg);
        ++delivered;
      }
      lock.lock();
      continue;
    }
    if (distributed_) {
      // Local-only semantics: drain the inbox and flush our own sends.
      // Global quiescence cannot be observed from one process — the round
      // protocols use run_until(predicate) + explicit DONE/ACK instead.
      std::vector<std::shared_ptr<channel>> chs;
      chs.reserve(channels_.size());
      for (const auto& [id, c] : channels_) chs.push_back(c);
      lock.unlock();
      bool idle = true;
      for (const auto& c : chs) {
        std::lock_guard lk{c->m};
        if (c->queued_bytes != 0) idle = false;
      }
      lock.lock();
      if (idle && inbox_.empty()) return delivered;
    } else if (in_flight_ == 0) {
      // Exact: every message ever sent has landed in the inbox (and the
      // inbox is empty) — nothing queued, in a socket buffer, or in the io
      // loop. No idle-timeout guessing.
      return delivered;
    }
    if (inbox_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        inbox_.empty()) {
      if (!distributed_ && in_flight_ == 0) return delivered;
      throw transport_error{
          "run_until_quiescent: fabric failed to reach quiescence before the "
          "deadline (wedged peer or lost frames)"};
    }
  }
}

void tcp_net::run_until(const std::function<bool()>& done, int deadline_ms) {
  expects(done != nullptr, "run_until needs a completion predicate");
  const auto deadline = clock::now() + std::chrono::milliseconds{deadline_ms};
  if (done()) return;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (!inbox_.empty()) {
      message msg = std::move(inbox_.front());
      inbox_.pop_front();
      const auto it = handlers_.find(msg.to);
      message_handler handler = it != handlers_.end() ? it->second : nullptr;
      lock.unlock();
      if (handler) handler(msg);
      if (done()) return;
      lock.lock();
      continue;
    }
    // Wait in slices and re-evaluate the predicate each wakeup: it may be
    // flipped by state outside this fabric's handlers (another fabric's
    // delivery thread, a signal flag), not only by a message arriving here.
    const auto slice = std::min<clock::duration>(
        std::chrono::milliseconds{50}, deadline - clock::now());
    const bool timed_out =
        slice <= clock::duration::zero() ||
        inbox_cv_.wait_for(lock, slice) == std::cv_status::timeout;
    if (inbox_.empty()) {
      lock.unlock();
      const bool finished = done();
      lock.lock();
      if (finished) return;
      if (timed_out && clock::now() >= deadline) {
        throw transport_error{
            "run_until: deadline expired before the completion predicate held"};
      }
    }
  }
}

void tcp_net::flush_sends() {
  std::vector<std::shared_ptr<channel>> chs;
  {
    std::lock_guard lock{mutex_};
    chs.reserve(channels_.size());
    for (const auto& [id, ch] : channels_) chs.push_back(ch);
  }
  for (const auto& ch : chs) {
    std::unique_lock lk{ch->m};
    ch->cv_space.wait(lk, [&] {
      return ch->stop || ch->broken || ch->queued_bytes == 0;
    });
  }
}

std::uint16_t tcp_net::port_of(node_id id) const {
  std::lock_guard lock{mutex_};
  const auto it = listeners_.find(id);
  expects(it != listeners_.end(), "node is not registered");
  return it->second->port;
}

void tcp_net::drop_connections_to(node_id id) {
  std::shared_ptr<channel> ch;
  {
    std::lock_guard lock{mutex_};
    const auto it = channels_.find(id);
    if (it == channels_.end()) return;
    ch = it->second;
  }
  std::lock_guard lk{ch->m};
  if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
}

tcp_stats tcp_net::stats() const {
  tcp_stats out;
  out.messages_sent = messages_sent_.load();
  out.chunks_sent = chunks_sent_.load();
  out.messages_received = messages_received_.load();
  out.reconnects = reconnects_.load();
  out.duplicates_dropped = duplicates_dropped_.load();
  out.peak_queue_bytes = peak_queue_bytes_.load();
  return out;
}

tcp_net::~tcp_net() {
  stopping_.store(true, std::memory_order_release);

  std::vector<std::shared_ptr<channel>> chs;
  {
    std::lock_guard lock{mutex_};
    chs.reserve(channels_.size());
    for (auto& [id, ch] : channels_) chs.push_back(ch);
  }
  // Unblock senders stuck in backpressure waits, then stop the io loop.
  for (const auto& ch : chs) {
    {
      std::lock_guard lk{ch->m};
      ch->stop = true;
      if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
    }
    ch->cv_space.notify_all();
  }
  wake_io();
  if (io_thread_.joinable()) io_thread_.join();

  // The io thread is gone: account and release everything it owned.
  std::size_t dropped = 0;
  for (const auto& ch : chs) {
    std::lock_guard lk{ch->m};
    dropped += ch->queue.size();
    ch->queue.clear();
    ch->queued_bytes = 0;
    if (ch->fd >= 0) {
      ::close(ch->fd);
      ch->fd = -1;
    }
  }
  {
    std::lock_guard lock{mutex_};
    if (!distributed_) in_flight_ -= static_cast<std::int64_t>(dropped);
    for (auto& [id, lst] : listeners_) ::close(lst->fd);
  }
  inbox_cv_.notify_all();
  for (auto& [fd, entry] : io_entries_) {
    // Outbound fds are owned via their channel (closed above); listener
    // fds via listeners_. Inbound connections and the wake eventfd are
    // owned here.
    if (entry->k == io_entry::kind::inbound || entry->k == io_entry::kind::wake) {
      ::close(fd);
    }
  }
  io_entries_.clear();
  ::close(epoll_fd_);
}

}  // namespace tormet::net
