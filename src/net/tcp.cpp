#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/net/wire.h"
#include "src/util/check.h"

namespace tormet::net {

namespace {

void throw_errno(const char* what) {
  throw std::runtime_error{std::string{what} + ": " + std::strerror(errno)};
}

/// Writes exactly `data.size()` bytes (retrying on short writes / EINTR).
void write_all(int fd, byte_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `out.size()` bytes; returns false on orderly EOF at a
/// frame boundary (and throws mid-frame).
bool read_all(int fd, std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // connection reset — treat as EOF
    }
    if (n == 0) {
      if (got == 0) return false;
      throw wire_error{"connection closed mid-frame"};
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

constexpr std::size_t k_max_frame = 64u << 20;  // 64 MiB sanity bound

}  // namespace

struct tcp_net::listener {
  int fd = -1;
  std::uint16_t port = 0;
  std::thread accept_thread;
};

tcp_net::tcp_net() = default;

// Outbound connection with its own write lock, so a blocking send never
// holds the fabric-wide mutex (reader threads need that mutex to drain the
// socket on the other side — holding it while writing could deadlock once
// the loopback buffer fills).
struct tcp_net::out_connection {
  int fd = -1;
  std::mutex write_mutex;
};

void tcp_net::register_node(node_id id, message_handler handler) {
  expects(handler != nullptr, "handler must be callable");
  std::lock_guard lock{mutex_};
  handlers_[id] = std::move(handler);
  if (listeners_.contains(id)) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }

  auto lst = std::make_unique<listener>();
  lst->fd = fd;
  lst->port = ntohs(addr.sin_port);
  lst->accept_thread = std::thread{[this, fd] {
    for (;;) {
      const int conn = ::accept(fd, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed — shut down
      }
      std::lock_guard guard{mutex_};
      if (stopping_) {
        ::close(conn);
        return;
      }
      reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
    }
  }};
  listeners_[id] = std::move(lst);
}

void tcp_net::reader_loop(int fd) {
  for (;;) {
    std::uint8_t header[4];
    if (!read_all(fd, header)) break;
    std::uint32_t frame_len = 0;
    for (int i = 3; i >= 0; --i) frame_len = (frame_len << 8) | header[i];
    if (frame_len > k_max_frame) break;
    byte_buffer frame(frame_len);
    if (!read_all(fd, frame)) break;
    try {
      wire_reader r{frame};
      message msg;
      msg.from = r.read_u32();
      msg.to = r.read_u32();
      msg.type = r.read_u16();
      msg.payload = r.read_bytes();
      r.expect_end();
      enqueue(std::move(msg));
    } catch (const wire_error&) {
      break;  // malformed peer — drop the connection
    }
  }
  ::close(fd);
}

void tcp_net::enqueue(message msg) {
  {
    std::lock_guard lock{mutex_};
    inbox_.push_back(std::move(msg));
  }
  queue_cv_.notify_all();
}

std::shared_ptr<tcp_net::out_connection> tcp_net::connection_to(node_id id) {
  std::lock_guard lock{mutex_};
  const auto cached = out_connections_.find(id);
  if (cached != out_connections_.end()) return cached->second;

  const auto lst = listeners_.find(id);
  expects(lst != listeners_.end(), "destination node is not registered");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(lst->second->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("connect");
  }
  auto conn = std::make_shared<out_connection>();
  conn->fd = fd;
  out_connections_[id] = conn;
  return conn;
}

void tcp_net::send(message msg) {
  wire_writer w;
  w.write_u32(msg.from);
  w.write_u32(msg.to);
  w.write_u16(msg.type);
  w.write_bytes(msg.payload);
  const byte_buffer body = w.take();

  byte_buffer frame;
  frame.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), body.begin(), body.end());

  const std::shared_ptr<out_connection> conn = connection_to(msg.to);
  std::lock_guard write_lock{conn->write_mutex};
  write_all(conn->fd, frame);
}

std::size_t tcp_net::run_until_quiescent() {
  std::size_t delivered = 0;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (inbox_.empty()) {
      const bool got = queue_cv_.wait_for(
          lock, std::chrono::milliseconds{idle_timeout_ms_},
          [this] { return !inbox_.empty(); });
      if (!got) return delivered;  // idle window elapsed — quiescent
    }
    message msg = std::move(inbox_.front());
    inbox_.pop_front();
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) continue;
    message_handler handler = it->second;
    lock.unlock();  // handlers may send(), which needs the mutex
    handler(msg);
    ++delivered;
    lock.lock();
  }
}

std::uint16_t tcp_net::port_of(node_id id) const {
  std::lock_guard lock{mutex_};
  const auto it = listeners_.find(id);
  expects(it != listeners_.end(), "node is not registered");
  return it->second->port;
}

tcp_net::~tcp_net() {
  std::vector<std::thread> readers;
  {
    std::lock_guard lock{mutex_};
    stopping_ = true;
    for (auto& [id, lst] : listeners_) {
      ::shutdown(lst->fd, SHUT_RDWR);
      ::close(lst->fd);
    }
    for (auto& [id, conn] : out_connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
      ::close(conn->fd);
    }
    readers.swap(reader_threads_);
  }
  for (auto& [id, lst] : listeners_) {
    if (lst->accept_thread.joinable()) lst->accept_thread.join();
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tormet::net
