#include "src/net/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>

#include "src/net/wire.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace tormet::net {

namespace {

using clock = std::chrono::steady_clock;

constexpr std::uint8_t k_flag_final = 0x01;  // last chunk of a message

/// Protocol-level chunk bound: receivers accept chunks up to this size
/// regardless of their own max_chunk_bytes, so two fabrics configured
/// with different chunk sizes still interoperate (the sender's chunking
/// granularity is a sender-side choice; the receiver only enforces the
/// reassembled-message bound).
constexpr std::size_t k_max_chunk_wire = 16u << 20;

/// Resend attempts per message before the writer declares the channel
/// broken. Transient failures (peer restart, dropped link) succeed on the
/// first or second retry; a peer that *keeps* rejecting our frames would
/// otherwise loop reconnect-and-resend forever.
constexpr int k_max_write_attempts = 8;

void throw_errno(const char* what) {
  throw transport_error{std::string{what} + ": " + std::strerror(errno)};
}

/// Writes exactly `data.size()` bytes; returns false on a broken connection.
bool write_all(int fd, byte_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `out.size()` bytes; returns false on EOF/reset.
bool read_all(int fd, std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Epoch and sequence lead the body so the dedup decision needs no payload
/// parsing beyond the fixed-size head.
[[nodiscard]] byte_buffer encode_body(const message& msg, std::uint64_t epoch,
                                      std::uint64_t seq) {
  wire_writer w;
  w.write_u64(epoch);
  w.write_u64(seq);
  w.write_u32(msg.from);
  w.write_u32(msg.to);
  w.write_u16(msg.type);
  w.write_bytes(msg.payload);
  return w.take();
}

struct decoded_frame {
  message msg;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

[[nodiscard]] decoded_frame decode_body(byte_view body) {
  wire_reader r{body};
  decoded_frame f;
  f.epoch = r.read_u64();
  f.seq = r.read_u64();
  f.msg.from = r.read_u32();
  f.msg.to = r.read_u32();
  f.msg.type = r.read_u16();
  f.msg.payload = r.read_bytes();
  r.expect_end();
  return f;
}

/// Random per-process fabric epoch (never zero so tests can use 0 as a
/// distinct foreign epoch).
[[nodiscard]] std::uint64_t make_epoch() {
  std::random_device rd;
  const std::uint64_t e =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  return e == 0 ? 1 : e;
}

/// Approximate fabric bytes one queued message occupies (for backpressure).
[[nodiscard]] std::size_t queue_cost(const message& msg) noexcept {
  return msg.payload.size() + 64;
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

struct tcp_net::listener {
  int fd = -1;
  std::uint16_t port = 0;
  std::thread accept_thread;
};

/// One outbound destination: a bounded message queue drained by a dedicated
/// writer thread that owns the socket lifecycle (connect with retry,
/// chunked frame writes, transparent reconnect on failure).
struct tcp_net::channel {
  struct queued_msg {
    message msg;
    std::uint64_t seq = 0;  // assigned under `m` at enqueue: queue order == seq order
  };

  node_id dest = 0;
  std::mutex m;
  std::condition_variable cv_work;   // writer: queue non-empty or stop
  std::condition_variable cv_space;  // senders: queue fell below the limit
  std::deque<queued_msg> queue;
  std::size_t queued_bytes = 0;  // includes the message being written
  std::uint64_t next_seq = 1;    // 0 is the receiver's "nothing seen" state
  bool stop = false;
  bool broken = false;  // connect deadline exhausted: sends now fail
  int fd = -1;          // owned by the writer thread; shutdown() by hooks
  std::thread writer;
};

namespace {
[[nodiscard]] tcp_options sanitize(tcp_options o) {
  o.max_chunk_bytes = std::clamp<std::size_t>(o.max_chunk_bytes, 1, k_max_chunk_wire);
  // A zero queue limit would make the very first send() block forever
  // (0 < 0 never holds); every failure mode here must stay deadline-bounded.
  o.send_queue_limit_bytes = std::max<std::size_t>(o.send_queue_limit_bytes, 1);
  return o;
}
}  // namespace

tcp_net::tcp_net() : tcp_net(tcp_options{}) {}

tcp_net::tcp_net(tcp_options opts)
    : opts_{sanitize(opts)}, peers_{}, distributed_{false}, epoch_{make_epoch()} {}

tcp_net::tcp_net(std::map<node_id, tcp_endpoint> peers, tcp_options opts)
    : opts_{sanitize(opts)},
      peers_{std::move(peers)},
      distributed_{true},
      epoch_{make_epoch()} {
  expects(!peers_.empty(), "distributed fabric needs a peer map");
}

void tcp_net::register_node(node_id id, message_handler handler) {
  expects(handler != nullptr, "handler must be callable");
  std::lock_guard lock{mutex_};
  handlers_[id] = std::move(handler);
  if (listeners_.contains(id)) return;

  std::uint16_t want_port = 0;
  if (distributed_) {
    const auto it = peers_.find(id);
    expects(it != peers_.end(), "registered node missing from the peer map");
    want_port = it->second.port;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(distributed_ ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(want_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }

  auto lst = std::make_unique<listener>();
  lst->fd = fd;
  lst->port = ntohs(addr.sin_port);
  lst->accept_thread = std::thread{[this, fd] { accept_loop(fd); }};
  listeners_[id] = std::move(lst);
}

void tcp_net::accept_loop(int listen_fd) {
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed — shut down
    }
    std::lock_guard lock{mutex_};
    if (stopping_.load()) {
      ::close(conn);
      return;
    }
    {
      std::lock_guard ilock{inbound_mutex_};
      inbound_fds_.insert(conn);
    }
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void tcp_net::reader_loop(int fd) {
  byte_buffer assembly;
  for (;;) {
    std::uint8_t header[5];
    if (!read_all(fd, header)) break;
    const std::uint8_t flags = header[0];
    std::uint32_t chunk_len = 0;
    for (int i = 3; i >= 0; --i) chunk_len = (chunk_len << 8) | header[1 + i];
    if (chunk_len > k_max_chunk_wire ||
        assembly.size() + chunk_len > opts_.max_message_bytes) {
      log_line{log_level::warn}
          << "tcp_net: oversized frame from peer (" << chunk_len
          << " B chunk); dropping connection";
      break;
    }
    const std::size_t old = assembly.size();
    assembly.resize(old + chunk_len);
    if (!read_all(fd, std::span<std::uint8_t>{assembly}.subspan(old))) {
      break;  // connection cut mid-frame: discard the partial assembly —
              // the sender re-sends the whole message after reconnecting
    }
    if ((flags & k_flag_final) != 0) {
      try {
        decoded_frame f = decode_body(assembly);
        assembly.clear();
        messages_received_.fetch_add(1, std::memory_order_relaxed);
        enqueue(std::move(f.msg), f.epoch, f.seq);
      } catch (const wire_error&) {
        log_line{log_level::warn}
            << "tcp_net: malformed message; dropping connection";
        break;
      }
    }
  }
  {
    // De-register before closing: once closed, the fd number can be
    // recycled by any other thread, and the destructor must never
    // shutdown() a stranger's descriptor.
    std::lock_guard ilock{inbound_mutex_};
    inbound_fds_.erase(fd);
  }
  ::close(fd);
}

void tcp_net::enqueue(message msg, std::uint64_t epoch, std::uint64_t seq) {
  {
    std::lock_guard lock{mutex_};
    // Exactly-once: a writer resends whole messages after a reconnect, so a
    // message fully written before the cut can arrive twice. Sequence
    // numbers increase monotonically per (epoch, destination) channel and
    // connections deliver in order, so anything at or below the high-water
    // mark was already delivered. A dropped duplicate must NOT decrement
    // in_flight_ — its first arrival already balanced the send.
    std::uint64_t& max_seen = seen_seq_[{epoch, msg.to}];
    if (seq <= max_seen) {
      duplicates_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    max_seen = seq;
    inbox_.push_back(std::move(msg));
    if (!distributed_) --in_flight_;
  }
  inbox_cv_.notify_all();
}

tcp_endpoint tcp_net::address_of(node_id id) const {
  if (distributed_) {
    const auto it = peers_.find(id);
    expects(it != peers_.end(), "destination node missing from the peer map");
    return it->second;
  }
  std::lock_guard lock{mutex_};
  const auto it = listeners_.find(id);
  expects(it != listeners_.end(), "destination node is not registered");
  return tcp_endpoint{"127.0.0.1", it->second->port};
}

int tcp_net::connect_with_deadline(node_id dest) {
  const tcp_endpoint ep = address_of(dest);
  const auto deadline =
      clock::now() + std::chrono::milliseconds{opts_.connect_deadline_ms};
  for (;;) {
    if (stopping_.load()) return -1;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.c_str(), port_str.c_str(), &hints, &res) == 0) {
      for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          ::freeaddrinfo(res);
          return fd;
        }
        ::close(fd);
      }
      ::freeaddrinfo(res);
    }
    if (clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds{opts_.connect_retry_ms});
  }
}

std::shared_ptr<tcp_net::channel> tcp_net::channel_to(node_id id) {
  std::lock_guard lock{mutex_};
  expects(!stopping_.load(), "send on a stopping fabric");
  const auto cached = channels_.find(id);
  if (cached != channels_.end()) return cached->second;

  if (distributed_) {
    expects(peers_.contains(id), "destination node missing from the peer map");
  } else {
    expects(listeners_.contains(id), "destination node is not registered");
  }

  auto ch = std::make_shared<channel>();
  ch->dest = id;
  ch->writer = std::thread{[this, ch] { writer_loop(ch); }};
  channels_[id] = ch;
  return ch;
}

void tcp_net::writer_loop(const std::shared_ptr<channel>& ch) {
  for (;;) {
    channel::queued_msg cur;
    std::size_t cur_cost = 0;
    {
      std::unique_lock lk{ch->m};
      ch->cv_work.wait(lk, [&] { return ch->stop || !ch->queue.empty(); });
      if (ch->stop) break;
      cur = std::move(ch->queue.front());
      ch->queue.pop_front();
      cur_cost = queue_cost(cur.msg);
      // queued_bytes keeps counting `cur` until it is fully on the wire, so
      // backpressure covers the in-flight message too.
    }

    const byte_buffer body = encode_body(cur.msg, epoch_, cur.seq);
    bool written = false;
    bool gave_up = false;
    int attempts = 0;
    while (!written && !gave_up) {
      if (++attempts > k_max_write_attempts) {
        gave_up = true;  // peer keeps cutting us off — stop resending
        break;
      }
      int fd;
      {
        std::lock_guard lk{ch->m};
        if (ch->stop) {
          gave_up = true;
          break;
        }
        fd = ch->fd;
      }
      if (fd < 0) {
        fd = connect_with_deadline(ch->dest);
        if (fd < 0) {
          gave_up = true;  // connect deadline exhausted (or stopping)
          break;
        }
        std::lock_guard lk{ch->m};
        if (ch->stop) {
          ::close(fd);
          gave_up = true;
          break;
        }
        ch->fd = fd;
      }

      // Chunked, length-prefixed framing: ([u8 flags][u32 len le][bytes])*.
      written = true;
      std::size_t off = 0;
      do {
        const std::size_t chunk = std::min(opts_.max_chunk_bytes, body.size() - off);
        const bool final_chunk = off + chunk == body.size();
        std::uint8_t header[5];
        header[0] = final_chunk ? k_flag_final : 0;
        for (int i = 0; i < 4; ++i) {
          header[1 + i] = static_cast<std::uint8_t>(chunk >> (8 * i));
        }
        if (!write_all(fd, header) ||
            !write_all(fd, byte_view{body}.subspan(off, chunk))) {
          written = false;
          break;
        }
        chunks_sent_.fetch_add(1, std::memory_order_relaxed);
        off += chunk;
      } while (off < body.size());

      if (!written) {
        // Broken mid-stream: drop the socket and resend the whole message
        // on a fresh connection (the receiver discards partial assemblies).
        ::close(fd);
        std::lock_guard lk{ch->m};
        if (ch->fd == fd) ch->fd = -1;
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    if (written) {
      {
        std::lock_guard lk{ch->m};
        ch->queued_bytes -= cur_cost;
      }
      ch->cv_space.notify_all();
      if (distributed_) {
        // Distributed run_until_quiescent() watches channel queues drain.
        // The empty critical section orders this notify after a waiter
        // that just inspected the queues has reached wait_until, so the
        // drain is never missed.
        { std::lock_guard lock{mutex_}; }
        inbox_cv_.notify_all();
      }
      continue;
    }

    // Gave up on `cur` (stop or unreachable peer): drain and account.
    std::size_t dropped = 1;
    bool was_stop = false;
    {
      std::lock_guard lk{ch->m};
      was_stop = ch->stop;
      ch->broken = !was_stop;
      dropped += ch->queue.size();
      ch->queued_bytes = 0;
      ch->queue.clear();
    }
    ch->cv_space.notify_all();
    {
      std::lock_guard lock{mutex_};
      if (!distributed_) in_flight_ -= static_cast<std::int64_t>(dropped);
    }
    inbox_cv_.notify_all();
    if (was_stop) break;
    log_line{log_level::warn}
        << "tcp_net: destination " << ch->dest
        << " unreachable past the connect deadline; dropped " << dropped
        << " queued message(s)";
    // Channel stays alive (broken) to reject later sends until shutdown.
  }

  // Stopping: drop whatever remains queued and release the socket.
  std::size_t dropped = 0;
  {
    std::lock_guard lk{ch->m};
    dropped = ch->queue.size();
    ch->queue.clear();
    ch->queued_bytes = 0;
    if (ch->fd >= 0) {
      ::close(ch->fd);
      ch->fd = -1;
    }
  }
  ch->cv_space.notify_all();
  {
    std::lock_guard lock{mutex_};
    if (!distributed_) in_flight_ -= static_cast<std::int64_t>(dropped);
  }
  inbox_cv_.notify_all();
}

void tcp_net::send(message msg) {
  // Fail oversized messages at the sender instead of letting the receiver
  // reject the frame as malformed (which would read as a link failure).
  if (queue_cost(msg) > opts_.max_message_bytes) {
    throw transport_error{"send: message exceeds max_message_bytes"};
  }
  const std::shared_ptr<channel> ch = channel_to(msg.to);

  if (!distributed_) {
    std::lock_guard lock{mutex_};
    ++in_flight_;
  }

  bool rejected = false;
  {
    std::unique_lock lk{ch->m};
    // Durable deployments re-arm a broken channel: the peer may just be
    // restarting, and its supervisor will bring the listener back.
    if (opts_.repair_broken && ch->broken) ch->broken = false;
    ch->cv_space.wait(lk, [&] {
      return ch->stop || ch->broken ||
             ch->queued_bytes < opts_.send_queue_limit_bytes;
    });
    if (ch->stop || ch->broken) {
      rejected = true;
    } else {
      ch->queued_bytes += queue_cost(msg);
      atomic_max(peak_queue_bytes_, ch->queued_bytes);
      ch->queue.push_back(channel::queued_msg{std::move(msg), ch->next_seq++});
    }
  }
  if (rejected) {
    if (!distributed_) {
      std::lock_guard lock{mutex_};
      --in_flight_;
    }
    inbox_cv_.notify_all();
    throw transport_error{"send: destination channel is broken or stopping"};
  }
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  ch->cv_work.notify_all();
}

std::size_t tcp_net::run_until_quiescent() {
  const auto deadline =
      clock::now() + std::chrono::milliseconds{opts_.quiescence_deadline_ms};
  std::size_t delivered = 0;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (!inbox_.empty()) {
      message msg = std::move(inbox_.front());
      inbox_.pop_front();
      const auto it = handlers_.find(msg.to);
      message_handler handler = it != handlers_.end() ? it->second : nullptr;
      lock.unlock();
      if (handler) {
        handler(msg);
        ++delivered;
      }
      lock.lock();
      continue;
    }
    if (distributed_) {
      // Local-only semantics: drain the inbox and flush our own sends.
      // Global quiescence cannot be observed from one process — the round
      // protocols use run_until(predicate) + explicit DONE/ACK instead.
      std::vector<std::shared_ptr<channel>> chs;
      chs.reserve(channels_.size());
      for (const auto& [id, c] : channels_) chs.push_back(c);
      lock.unlock();
      bool idle = true;
      for (const auto& c : chs) {
        std::lock_guard lk{c->m};
        if (c->queued_bytes != 0) idle = false;
      }
      lock.lock();
      if (idle && inbox_.empty()) return delivered;
    } else if (in_flight_ == 0) {
      // Exact: every message ever sent has landed in the inbox (and the
      // inbox is empty) — nothing queued, in a socket buffer, or in a
      // reader thread. No idle-timeout guessing.
      return delivered;
    }
    if (inbox_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        inbox_.empty()) {
      if (!distributed_ && in_flight_ == 0) return delivered;
      throw transport_error{
          "run_until_quiescent: fabric failed to reach quiescence before the "
          "deadline (wedged peer or lost frames)"};
    }
  }
}

void tcp_net::run_until(const std::function<bool()>& done, int deadline_ms) {
  expects(done != nullptr, "run_until needs a completion predicate");
  const auto deadline = clock::now() + std::chrono::milliseconds{deadline_ms};
  if (done()) return;
  std::unique_lock lock{mutex_};
  for (;;) {
    if (!inbox_.empty()) {
      message msg = std::move(inbox_.front());
      inbox_.pop_front();
      const auto it = handlers_.find(msg.to);
      message_handler handler = it != handlers_.end() ? it->second : nullptr;
      lock.unlock();
      if (handler) handler(msg);
      if (done()) return;
      lock.lock();
      continue;
    }
    // Wait in slices and re-evaluate the predicate each wakeup: it may be
    // flipped by state outside this fabric's handlers (another fabric's
    // delivery thread, a signal flag), not only by a message arriving here.
    const auto slice = std::min<clock::duration>(
        std::chrono::milliseconds{50}, deadline - clock::now());
    const bool timed_out =
        slice <= clock::duration::zero() ||
        inbox_cv_.wait_for(lock, slice) == std::cv_status::timeout;
    if (inbox_.empty()) {
      lock.unlock();
      const bool finished = done();
      lock.lock();
      if (finished) return;
      if (timed_out && clock::now() >= deadline) {
        throw transport_error{
            "run_until: deadline expired before the completion predicate held"};
      }
    }
  }
}

void tcp_net::flush_sends() {
  std::vector<std::shared_ptr<channel>> chs;
  {
    std::lock_guard lock{mutex_};
    chs.reserve(channels_.size());
    for (const auto& [id, ch] : channels_) chs.push_back(ch);
  }
  for (const auto& ch : chs) {
    std::unique_lock lk{ch->m};
    ch->cv_space.wait(lk, [&] {
      return ch->stop || ch->broken || ch->queued_bytes == 0;
    });
  }
}

std::uint16_t tcp_net::port_of(node_id id) const {
  std::lock_guard lock{mutex_};
  const auto it = listeners_.find(id);
  expects(it != listeners_.end(), "node is not registered");
  return it->second->port;
}

void tcp_net::drop_connections_to(node_id id) {
  std::shared_ptr<channel> ch;
  {
    std::lock_guard lock{mutex_};
    const auto it = channels_.find(id);
    if (it == channels_.end()) return;
    ch = it->second;
  }
  std::lock_guard lk{ch->m};
  if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
}

tcp_stats tcp_net::stats() const {
  tcp_stats out;
  out.messages_sent = messages_sent_.load();
  out.chunks_sent = chunks_sent_.load();
  out.messages_received = messages_received_.load();
  out.reconnects = reconnects_.load();
  out.duplicates_dropped = duplicates_dropped_.load();
  out.peak_queue_bytes = peak_queue_bytes_.load();
  return out;
}

tcp_net::~tcp_net() {
  stopping_.store(true);

  std::vector<std::shared_ptr<channel>> chs;
  std::vector<std::thread> readers;
  {
    std::lock_guard lock{mutex_};
    chs.reserve(channels_.size());
    for (auto& [id, ch] : channels_) chs.push_back(ch);
    for (auto& [id, lst] : listeners_) {
      ::shutdown(lst->fd, SHUT_RDWR);
      ::close(lst->fd);
    }
    readers.swap(reader_threads_);
  }

  // Stop writers first: they close their sockets (readers then see EOF).
  for (const auto& ch : chs) {
    {
      std::lock_guard lk{ch->m};
      ch->stop = true;
      if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
    }
    ch->cv_work.notify_all();
    ch->cv_space.notify_all();
  }
  for (const auto& ch : chs) {
    if (ch->writer.joinable()) ch->writer.join();
  }

  // Force-close inbound connections so readers blocked on remote peers
  // (distributed mode) unblock too.
  {
    std::lock_guard ilock{inbound_mutex_};
    for (const int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
  }

  for (auto& [id, lst] : listeners_) {
    if (lst->accept_thread.joinable()) lst->accept_thread.join();
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tormet::net
