// TCP loopback transport: the same transport contract as inproc_net but over
// real POSIX sockets with length-prefixed frames. Demonstrates that the
// protocol layer runs over an actual network stack; a deployment across
// machines would reuse the framing with remote addresses.
//
// Threading model: one accept thread plus one reader thread per inbound
// connection; received messages land in a mutex-protected queue and are
// delivered on the thread that calls run_until_quiescent(). Handlers
// therefore never run concurrently with each other.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"

namespace tormet::net {

class tcp_net final : public transport {
 public:
  tcp_net();
  ~tcp_net() override;
  tcp_net(const tcp_net&) = delete;
  tcp_net& operator=(const tcp_net&) = delete;

  /// Binds a loopback listener for `id` and starts its accept thread.
  void register_node(node_id id, message_handler handler) override;

  /// Sends over a cached loopback connection (established on first use).
  void send(message msg) override;

  /// Delivers received messages until the fabric has been idle for
  /// `idle_timeout_ms` (quiescence over real sockets is approximate).
  std::size_t run_until_quiescent() override;

  /// Loopback port a node is listening on (for diagnostics/tests).
  [[nodiscard]] std::uint16_t port_of(node_id id) const;

  /// Idle window used by run_until_quiescent (default 50 ms).
  void set_idle_timeout_ms(int ms) noexcept { idle_timeout_ms_ = ms; }

 private:
  struct listener;
  struct out_connection;

  void reader_loop(int fd);
  void enqueue(message msg);
  [[nodiscard]] std::shared_ptr<out_connection> connection_to(node_id id);

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<message> inbox_;
  std::unordered_map<node_id, message_handler> handlers_;
  std::unordered_map<node_id, std::unique_ptr<listener>> listeners_;
  std::unordered_map<node_id, std::shared_ptr<out_connection>> out_connections_;
  std::vector<std::thread> reader_threads_;
  int idle_timeout_ms_ = 50;
  bool stopping_ = false;
};

}  // namespace tormet::net
