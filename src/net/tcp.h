// TCP transport: the same transport contract as inproc_net but over real
// POSIX sockets with chunked length-prefixed framing, bounded per-channel
// send queues (backpressure), and connection retry with a deadline. Two
// modes:
//
//  - Single-fabric (default ctor): every node registers against this one
//    object; listeners bind ephemeral loopback ports. All endpoints live in
//    this process, so quiescence is tracked *exactly* with a fabric-wide
//    in-flight counter — run_until_quiescent() returns only when no frame
//    is queued, in a socket buffer, or awaiting delivery (no idle-timeout
//    heuristic).
//
//  - Distributed (endpoint-map ctor): one fabric per OS process; each
//    process registers its own node(s), whose listeners bind the configured
//    ports, and send() connects out to the mapped host:port of remote
//    peers. Global quiescence is unknowable from one process, so protocol
//    drivers must use run_until(predicate) plus explicit completion
//    messages (see cli::node_runner's DONE/ACK round protocol);
//    run_until_quiescent() only flushes local sends and drains the inbox.
//
// Framing: a message body (sender epoch, per-channel sequence number, then
// from, to, type, payload via the wire codec) is split into chunks of at
// most max_chunk_bytes, each prefixed by a 5-byte header
// [u8 flags][u32 chunk_len le]; flags bit0 marks the final chunk of a
// message. Chunking bounds single write() sizes for multi-megabyte tally
// vectors and lets a reader enforce both per-chunk and per-message size
// limits while streaming.
//
// Exactly-once across reconnects: a channel that loses its connection
// mid-message resends the whole message on a fresh connection, which makes
// raw delivery at-least-once. Every send is therefore tagged with the
// fabric's random epoch and a per-channel monotonically increasing sequence
// number; the receiver remembers the highest sequence seen per
// (epoch, destination) channel and drops anything at or below it. Combined
// with the channel's one-message-at-a-time sequencing this restores
// exactly-once, FIFO delivery across any number of reconnects.
//
// Event plane: ONE io thread per fabric runs an epoll readiness loop that
// multiplexes every listener, every accepted inbound connection, and every
// outbound channel over non-blocking sockets — no thread per destination,
// no thread per connection. Outbound messages are framed into a flat wire
// buffer (chunk headers interleaved) and written with partial-write
// resumption from a byte offset on EAGAIN; non-blocking connects retry on
// a timer until the connect deadline. Inbound connections run a chunked
// reassembly state machine fed by readiness events. Received messages land
// in a mutex-protected inbox and are delivered on the thread that calls
// run_until_quiescent()/run_until(), so handlers never run concurrently
// with each other.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/transport.h"

namespace tormet::net {

/// Where a node listens (distributed mode).
struct tcp_endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct tcp_options {
  /// Maximum bytes per framed chunk (a message splits into ceil(n/chunk)
  /// chunks).
  std::size_t max_chunk_bytes = 256 * 1024;
  /// Maximum reassembled message body; larger peers are dropped as
  /// malformed.
  std::size_t max_message_bytes = 256u << 20;
  /// Bound on queued-but-unwritten bytes per destination; send() blocks
  /// when the queue is full (backpressure on a slow reader).
  std::size_t send_queue_limit_bytes = 8u << 20;
  /// Overall deadline for establishing (or re-establishing) one outbound
  /// connection, retried on a timer — peers in a distributed round start in
  /// arbitrary order.
  int connect_deadline_ms = 15'000;
  int connect_retry_ms = 25;
  /// Failure-detector bound for run_until_quiescent(): if the fabric fails
  /// to reach exact quiescence within this window something is wedged and a
  /// transport_error is thrown. Never causes an early *successful* return.
  int quiescence_deadline_ms = 120'000;
  /// When true, a send() to a channel that exhausted its connect deadline
  /// re-arms the channel instead of failing — the io loop retries from
  /// scratch. Durable deployments enable this so a peer that is down for a
  /// restart (supervisor respawn) does not poison the channel for the rest
  /// of the schedule.
  bool repair_broken = false;
};

/// Monotonic counters for tests and diagnostics.
struct tcp_stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t reconnects = 0;
  /// Resent messages the receiver side dropped as already-delivered (the
  /// exactly-once dedup path).
  std::uint64_t duplicates_dropped = 0;
  /// High-water mark of any destination's queued-but-unwritten bytes.
  std::uint64_t peak_queue_bytes = 0;
};

class tcp_net final : public transport {
 public:
  /// Single-fabric loopback mode (ephemeral ports, exact quiescence).
  tcp_net();
  explicit tcp_net(tcp_options opts);
  /// Distributed mode: `peers` maps every node in the deployment to its
  /// listen address. Nodes registered locally bind their mapped port;
  /// sends to any node connect to its mapped address.
  explicit tcp_net(std::map<node_id, tcp_endpoint> peers, tcp_options opts = {});
  ~tcp_net() override;
  tcp_net(const tcp_net&) = delete;
  tcp_net& operator=(const tcp_net&) = delete;

  /// Binds a listener for `id` (ephemeral loopback port in single-fabric
  /// mode; the endpoint-map port in distributed mode) and hands it to the
  /// io loop's epoll set.
  void register_node(node_id id, message_handler handler) override;

  /// Frames and enqueues `msg` on the destination's channel. Blocks while
  /// the destination's send queue is at send_queue_limit_bytes; throws
  /// transport_error if the destination is unreachable past the connect
  /// deadline or the fabric is stopping.
  void send(message msg) override;

  /// Single-fabric mode: delivers until *exactly* quiescent — inbox empty
  /// and zero frames in flight anywhere in the fabric (counter-tracked; no
  /// idle-timeout heuristic). Distributed mode: flushes local sends and
  /// drains the inbox (global quiescence is per-process unknowable — use
  /// run_until). Throws transport_error after quiescence_deadline_ms.
  std::size_t run_until_quiescent() override;

  /// Delivers messages until `done()` holds; throws transport_error when
  /// `deadline_ms` expires first. The predicate is evaluated after every
  /// delivered message, so completion is explicit, never inferred from
  /// idleness.
  void run_until(const std::function<bool()>& done, int deadline_ms) override;

  /// Blocks until every destination's send queue has drained to the wire.
  void flush_sends();

  /// Port a locally registered node is listening on.
  [[nodiscard]] std::uint16_t port_of(node_id id) const;

  /// Test hook: forcibly shuts down the cached connection to `id` (as if
  /// the link failed mid-stream). Subsequent sends transparently
  /// reconnect; a message whose frames were cut mid-write is resent from
  /// the start on the fresh connection (the receiver discards the partial
  /// assembly on EOF). A message fully written before the cut may be
  /// resent too (the sender cannot tell), but the receiver's per-channel
  /// sequence dedup drops the duplicate — delivery stays exactly-once and
  /// FIFO across the reconnect.
  void drop_connections_to(node_id id);

  [[nodiscard]] tcp_stats stats() const;

 private:
  struct listener;
  struct channel;
  struct io_entry;

  void start_io();
  void io_loop();
  /// Signals the io thread's eventfd (new work, new listener, stopping).
  void wake_io() const;
  void enqueue(message msg, std::uint64_t epoch, std::uint64_t seq);
  [[nodiscard]] std::shared_ptr<channel> channel_to(node_id id);
  /// Resolves the current listen address of `id` (throws if unknown).
  [[nodiscard]] tcp_endpoint address_of(node_id id) const;

  // io-thread-only helpers (never called off the io thread).
  void io_add_listener(int fd);
  void io_accept(const io_entry& lst);
  void io_read(io_entry& conn);
  void io_service_channel(const std::shared_ptr<channel>& ch);
  void io_start_connect(const std::shared_ptr<channel>& ch);
  /// EPOLLIN/RDHUP/ERR/HUP on an outbound socket: the peer never sends
  /// application data on this simplex link, so readability means FIN/RST —
  /// drop the connection so the next write reconnects instead of pouring
  /// bytes into a dead socket (a restarted peer would otherwise silently
  /// swallow the first message written before the failure is noticed).
  void io_peer_closed(io_entry& entry);
  void io_check_connect(channel& ch);
  /// Drains the channel's queue onto the wire until EAGAIN, an error, or
  /// an empty queue; sets `completed` when whole messages finished.
  void io_write_pending(channel& ch, bool& completed, bool& gave_up);
  void io_fail_connection(channel& ch, bool& gave_up);
  void io_give_up(const std::shared_ptr<channel>& ch);
  void io_arm(channel& ch, bool want_out);
  void io_drop_entry(int fd);

  const tcp_options opts_;
  const std::map<node_id, tcp_endpoint> peers_;  // empty => single-fabric
  const bool distributed_;
  /// Random per-fabric epoch stamped into every frame; a restarted process
  /// gets a fresh epoch, so its sequence numbers never collide with its
  /// predecessor's in a receiver's dedup state.
  const std::uint64_t epoch_;

  mutable std::mutex mutex_;
  std::condition_variable inbox_cv_;
  std::deque<message> inbox_;
  std::unordered_map<node_id, message_handler> handlers_;
  std::unordered_map<node_id, std::unique_ptr<listener>> listeners_;
  std::unordered_map<node_id, std::shared_ptr<channel>> channels_;
  /// Listener fds bound by register_node, awaiting epoll registration by
  /// the io thread. Guarded by mutex_.
  std::vector<int> pending_listener_fds_;
  /// Messages sent minus messages landed in the inbox (single-fabric mode
  /// only): exact in-flight count for quiescence. Guarded by mutex_.
  std::int64_t in_flight_ = 0;
  /// Exactly-once dedup: highest sequence number delivered per
  /// (sender epoch, destination node) channel. Guarded by mutex_.
  std::map<std::pair<std::uint64_t, node_id>, std::uint64_t> seen_seq_;
  std::atomic<bool> stopping_{false};

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread io_thread_;
  /// Every fd the io loop watches (io thread only, except construction).
  std::unordered_map<int, std::unique_ptr<io_entry>> io_entries_;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> chunks_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> duplicates_dropped_{0};
  std::atomic<std::uint64_t> peak_queue_bytes_{0};
};

}  // namespace tormet::net
