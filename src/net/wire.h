// Wire codec: a small, bounds-checked, little-endian serializer shared by
// protocol messages (PrivCount/PSC) and the TCP frame layer. Deliberately
// schema-free — each message type implements encode/decode — but every
// primitive read is length-checked, so truncated or malicious input raises
// wire_error instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.h"

namespace tormet::net {

/// Thrown on malformed input (truncation, oversized lengths).
class wire_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only encoder.
class wire_writer {
 public:
  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  /// IEEE-754 bits of a double (used for noise parameters in config
  /// messages; counters themselves are integers).
  void write_f64(double v);
  /// LEB128-style varint (space-efficient lengths).
  void write_varint(std::uint64_t v);
  /// varint length followed by raw bytes.
  void write_bytes(byte_view data);
  void write_string(std::string_view s);

  [[nodiscard]] const byte_buffer& data() const noexcept { return buf_; }
  [[nodiscard]] byte_buffer take() noexcept { return std::move(buf_); }

 private:
  byte_buffer buf_;
};

/// Bounds-checked decoder over a borrowed view. The view must outlive the
/// reader.
class wire_reader {
 public:
  explicit wire_reader(byte_view data) noexcept : data_{data} {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::uint64_t read_varint();
  [[nodiscard]] byte_buffer read_bytes();
  [[nodiscard]] std::string read_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }
  /// Throws wire_error unless the whole input has been consumed — call at
  /// the end of a message decode to reject trailing garbage.
  void expect_end() const;

 private:
  void require(std::size_t n) const;
  byte_view data_;
  std::size_t pos_ = 0;
};

}  // namespace tormet::net
