// Deterministic in-process transport. Messages are queued FIFO and delivered
// synchronously by run_until_quiescent(), so protocol runs are exactly
// reproducible. Failure injection (message drop per link, node partition)
// supports the failure-handling tests.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>

#include "src/net/transport.h"
#include "src/util/rng.h"

namespace tormet::net {

class inproc_net final : public transport {
 public:
  inproc_net() = default;

  void register_node(node_id id, message_handler handler) override;
  void send(message msg) override;
  std::size_t run_until_quiescent() override;

  // -- failure injection --------------------------------------------------
  /// Drops every message to/from `id` (simulates a crashed node).
  void partition_node(node_id id);
  /// Restores delivery for `id`.
  void heal_node(node_id id);
  /// Drops each queued message independently with probability `p`
  /// (deterministic given the seed).
  void set_drop_probability(double p, std::uint64_t seed = 1);

  [[nodiscard]] std::size_t dropped_count() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t delivered_count() const noexcept { return delivered_; }

 private:
  [[nodiscard]] bool should_drop(const message& msg);

  std::unordered_map<node_id, message_handler> handlers_;
  std::deque<message> queue_;
  std::set<node_id> partitioned_;
  double drop_probability_ = 0.0;
  rng drop_rng_{1};
  std::size_t dropped_ = 0;
  std::size_t delivered_ = 0;
  bool delivering_ = false;
};

}  // namespace tormet::net
