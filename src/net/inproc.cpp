#include "src/net/inproc.h"

#include "src/util/check.h"

namespace tormet::net {

void inproc_net::register_node(node_id id, message_handler handler) {
  expects(handler != nullptr, "handler must be callable");
  handlers_[id] = std::move(handler);
}

void inproc_net::send(message msg) { queue_.push_back(std::move(msg)); }

bool inproc_net::should_drop(const message& msg) {
  if (partitioned_.contains(msg.from) || partitioned_.contains(msg.to)) return true;
  if (drop_probability_ > 0.0 && drop_rng_.bernoulli(drop_probability_)) return true;
  return false;
}

std::size_t inproc_net::run_until_quiescent() {
  // Handlers may send during delivery; the loop drains until empty.
  // Re-entrant calls (a handler calling run_until_quiescent) are forbidden.
  expects(!delivering_, "run_until_quiescent is not re-entrant");
  delivering_ = true;
  std::size_t n = 0;
  while (!queue_.empty()) {
    message msg = std::move(queue_.front());
    queue_.pop_front();
    if (should_drop(msg)) {
      ++dropped_;
      continue;
    }
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) {
      ++dropped_;  // unknown destination behaves like a dead node
      continue;
    }
    ++delivered_;
    ++n;
    it->second(msg);
  }
  delivering_ = false;
  return n;
}

void inproc_net::partition_node(node_id id) { partitioned_.insert(id); }

void inproc_net::heal_node(node_id id) { partitioned_.erase(id); }

void inproc_net::set_drop_probability(double p, std::uint64_t seed) {
  expects(p >= 0.0 && p <= 1.0, "drop probability must be in [0,1]");
  drop_probability_ = p;
  drop_rng_ = rng{seed};
}

}  // namespace tormet::net
