#include "src/net/wire.h"

#include <bit>
#include <cstring>

namespace tormet::net {

void wire_writer::write_u8(std::uint8_t v) { buf_.push_back(v); }

void wire_writer::write_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void wire_writer::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void wire_writer::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void wire_writer::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void wire_writer::write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void wire_writer::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void wire_writer::write_bytes(byte_view data) {
  write_varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void wire_writer::write_string(std::string_view s) { write_bytes(as_bytes(s)); }

void wire_reader::require(std::size_t n) const {
  if (remaining() < n) throw wire_error{"truncated input"};
}

std::uint8_t wire_reader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t wire_reader::read_u16() {
  require(2);
  std::uint16_t v = 0;
  for (int i = 1; i >= 0; --i) v = static_cast<std::uint16_t>((v << 8) | data_[pos_ + static_cast<std::size_t>(i)]);
  pos_ += 2;
  return v;
}

std::uint32_t wire_reader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t wire_reader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::int64_t wire_reader::read_i64() { return static_cast<std::int64_t>(read_u64()); }

double wire_reader::read_f64() { return std::bit_cast<double>(read_u64()); }

std::uint64_t wire_reader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    require(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 63 && (byte & 0x7f) > 1) throw wire_error{"varint overflow"};
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw wire_error{"varint too long"};
  }
}

byte_buffer wire_reader::read_bytes() {
  const std::uint64_t len = read_varint();
  if (len > remaining()) throw wire_error{"byte field longer than input"};
  byte_buffer out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string wire_reader::read_string() {
  const byte_buffer b = read_bytes();
  return {b.begin(), b.end()};
}

void wire_reader::expect_end() const {
  if (!at_end()) throw wire_error{"trailing bytes after message"};
}

}  // namespace tormet::net
